type config = {
  timeout : float;
  retries : int;
  backoff : float;
  client_cpu_per_call : float;
  server_cpu_per_call : float;
  cpu_per_kbyte : float;
}

let default_config =
  {
    timeout = 1.0;
    retries = 5;
    backoff = 2.0;
    client_cpu_per_call = 0.002;
    server_cpu_per_call = 0.002;
    cpu_per_kbyte = 0.003;
  }

exception Timeout of { prog : string; proc : string }

exception Server_unavailable of { prog : string; proc : string; waited : float }

(* Retry budget for callers that must survive a server crash window
   but not retry forever: whole calls are re-issued with bounded
   exponential backoff until the budget of wall-clock (simulated)
   seconds is spent, then the typed failure surfaces. *)
type budget = {
  give_up_after : float;
  initial_backoff : float;
  max_backoff : float;
}

let budget ?(initial_backoff = 0.5) ?(max_backoff = 30.0) give_up_after =
  if give_up_after <= 0.0 then
    invalid_arg "Rpc.budget: give_up_after must be positive";
  if initial_backoff <= 0.0 then
    invalid_arg "Rpc.budget: initial_backoff must be positive";
  { give_up_after; initial_backoff; max_backoff = Float.max initial_backoff max_backoff }

type reply = { data : bytes; bulk : int }

(* [ctx] is the causal context of the client operation this request
   serves (Obs.Causal.none for background traffic). It rides the
   request like [caller] does — an explicit field of the simulated
   wire header, never ambient state — so handlers can tag the work
   they do, and the work they induce, with the operation that caused
   it. *)
type handler =
  caller:Net.Host.t -> ctx:Obs.Causal.t -> proc:string -> Xdr.Dec.t -> reply

(* Duplicate-request cache, direct-mapped by xid like the bounded
   "recent request cache" of real NFS servers. xids come from the
   transport's single monotonic counter, so a slot collision only
   evicts an entry [drc_slots] xids older — far outside any
   retransmission window — and the cache stays a fixed-size array
   instead of a hash table that grows (and rehashes) with every call
   ever made. [drc_xid.(i) = -1] marks a free slot; [drc_reply.(i) =
   None] under a live xid means the call is still executing. *)
let drc_slots = 4096

(* Everything the request path needs per procedure, resolved once per
   procedure instead of once per request: the display name (a string
   concatenation), the operation-count cell (a string-hashed counter
   lookup) and, once the first reply has come back, the client-side
   success-latency sink (a tuple-keyed histogram lookup). *)
type proc_info = {
  pname : string; (* "prog.proc" *)
  count : int ref; (* this proc's cell in the service's [counts] *)
  mutable lat_ok : Stats.Histogram.t option;
      (* created on first successful reply, exactly where the slow
         path would have created it, so procedures that only ever time
         out don't grow a spurious empty success histogram *)
}

type service = {
  prog : string;
  host : Net.Host.t;
  mutable handler : handler;
  pool : Sim.Semaphore.t;
  drc_xid : int array;
  drc_reply : reply option array;
  mutable drc_used : int; (* occupied slots, for the gauge poll *)
  procs : (string, proc_info) Hashtbl.t;
  counts : Stats.Counter.t;
  mutable executed : int; (* calls actually run (duplicates suppressed) *)
  mutable duplicates : int; (* retransmissions absorbed by the dup cache *)
  mutable on_restart : (unit -> unit) option;
  mutable epoch_seen : int;
}

type t = {
  net : Net.t;
  config : config;
  services : (int * string, service) Hashtbl.t; (* (host addr, prog) *)
  latencies : Obs.Latency.t;
  (* one-slot memo for the per-call service lookup: every client in a
     testbed talks to the same server address and program, so the
     tuple-keyed hash lookup hits this slot almost always. [serve]
     clears it, so a re-registered service is never seen stale. *)
  mutable memo_addr : int;
  mutable memo_prog : string;
  mutable memo_svc : service option;
  mutable next_xid : int;
  mutable retransmissions : int;
  mutable in_flight : int;
}

let create net ?(config = default_config) () =
  let t =
    {
      net;
      config;
      services = Hashtbl.create 8;
      latencies = Obs.Latency.create ();
      memo_addr = -1;
      memo_prog = "";
      memo_svc = None;
      next_xid = 1;
      retransmissions = 0;
      in_flight = 0;
    }
  in
  Obs.Metrics.register_poll "rpc_client_in_flight" (fun () ->
      float_of_int t.in_flight);
  t

let net t = t.net
let config t = t.config
let retransmissions t = t.retransmissions
let latencies t = t.latencies

let serve t host ~prog ~threads handler =
  let key = (Net.Host.addr host, prog) in
  match Hashtbl.find_opt t.services key with
  | Some svc ->
      svc.handler <- handler;
      svc
  | None ->
      let svc =
        {
          prog;
          host;
          handler;
          pool = Sim.Semaphore.create (Net.engine t.net) threads;
          drc_xid = Array.make drc_slots (-1);
          drc_reply = Array.make drc_slots None;
          drc_used = 0;
          procs = Hashtbl.create 16;
          counts = Stats.Counter.create ();
          executed = 0;
          duplicates = 0;
          on_restart = None;
          epoch_seen = Net.Host.boot_epoch host;
        }
      in
      Hashtbl.replace t.services key svc;
      t.memo_svc <- None;
      Obs.Metrics.register_poll
        ~labels:[ ("host", Net.Host.name host); ("prog", prog) ]
        "rpc_dup_cache_entries"
        (fun () -> float_of_int svc.drc_used);
      svc

let service_host svc = svc.host
let service_prog svc = svc.prog
let counters svc = svc.counts
let executed_count svc = svc.executed
let duplicate_count svc = svc.duplicates
let set_on_restart svc f = svc.on_restart <- Some f
let thread_pool svc = svc.pool

let payload_cpu t bytes = t.config.cpu_per_kbyte *. (float_of_int bytes /. 1024.)

let server_now svc = Sim.Engine.now (Net.Host.engine svc.host)

let proc_info svc proc =
  match Hashtbl.find_opt svc.procs proc with
  | Some i -> i
  | None ->
      let i =
        {
          pname = svc.prog ^ "." ^ proc;
          count = Stats.Counter.cell svc.counts proc;
          lat_ok = None;
        }
      in
      Hashtbl.replace svc.procs proc i;
      i

let note_duplicate svc ~trace_name ~pname ~xid =
  svc.duplicates <- svc.duplicates + 1;
  if Obs.Metrics.on () then
    Obs.Metrics.incr
      ~labels:[ ("host", Net.Host.name svc.host); ("prog", svc.prog) ]
      "rpc_duplicates_total";
  if Obs.Trace.on () then
    Obs.Trace.instant ~ts:(server_now svc) ~cat:"rpc" ~name:trace_name
      ~track:(Net.Host.name svc.host)
      ~args:[ ("proc", Obs.Trace.Str pname); ("xid", Obs.Trace.Int xid) ]
      ()

(* Runs on the server when a request message arrives. [reply_to] sends a
   reply back along the path of this particular request message. *)
let handle_request t svc info ~caller ~ctx ~xid ~proc ~args ~bulk ~reply_to =
  (* volatile server state does not survive a reboot *)
  let epoch = Net.Host.boot_epoch svc.host in
  if epoch <> svc.epoch_seen then begin
    svc.epoch_seen <- epoch;
    Array.fill svc.drc_xid 0 drc_slots (-1);
    Array.fill svc.drc_reply 0 drc_slots None;
    svc.drc_used <- 0;
    match svc.on_restart with None -> () | Some f -> f ()
  end;
  let slot = xid land (drc_slots - 1) in
  if svc.drc_xid.(slot) = xid then
    match svc.drc_reply.(slot) with
    | None ->
        (* retransmission of a call being served: drop *)
        note_duplicate svc ~trace_name:"dup_drop" ~pname:info.pname ~xid
    | Some reply ->
        (* replay cached reply *)
        note_duplicate svc ~trace_name:"dup_replay" ~pname:info.pname ~xid;
        reply_to reply
  else begin
    if svc.drc_xid.(slot) = -1 then svc.drc_used <- svc.drc_used + 1;
    svc.drc_xid.(slot) <- xid;
    svc.drc_reply.(slot) <- None;
    let arrival = server_now svc in
    Sim.Engine.spawn (Net.Host.engine svc.host) ~name:info.pname
      (* one spawned task per executed request is the DRC's budgeted cost;
         duplicates were filtered above — snfs-lint: allow hot-alloc *)
      (fun () ->
        (* the semaphore scoping closure rides the same per-executed-request
           budget — snfs-lint: allow hot-alloc *)
        Sim.Semaphore.with_unit svc.pool (fun () ->
            let count = info.count in
            count := !count + 1;
            svc.executed <- svc.executed + 1;
              (* same site as the legacy Stats.Counter path, so the
                 registry and the counter tables can never disagree *)
              if Obs.Metrics.on () then
                Obs.Metrics.incr
                  ~labels:
                    [
                      ("host", Net.Host.name svc.host);
                      ("prog", svc.prog);
                      ("proc", proc);
                    ]
                  "rpc_server_calls_total";
              let sp =
                if Obs.Trace.on () && Obs.Causal.keep ctx then
                  (* [queued] = dispatch-to-thread wait, so the analyzer
                     can split server queueing from server compute *)
                  Obs.Trace.span ~ts:(server_now svc) ~cat:"rpc"
                    ~name:("exec " ^ svc.prog ^ "." ^ proc)
                    ~track:(Net.Host.name svc.host)
                    ~args:
                      (Obs.Causal.arg ctx
                         [
                           ("xid", Obs.Trace.Int xid);
                           ("queued", Obs.Trace.Float (server_now svc -. arrival));
                         ])
                    ()
                else Obs.Trace.none
              in
              Net.Host.use_cpu svc.host
                (t.config.server_cpu_per_call
                +. payload_cpu t (Bytes.length args + bulk));
              let reply =
                svc.handler ~caller ~ctx ~proc (Xdr.Dec.of_bytes args)
              in
              Net.Host.use_cpu svc.host
                (payload_cpu t (Bytes.length reply.data + reply.bulk));
              Obs.Trace.finish ~ts:(server_now svc) sp;
              (* publish only if the slot still belongs to this xid: a
                 colliding newer request may have evicted it while the
                 handler ran *)
              if svc.drc_xid.(slot) = xid then
                (* the one reply box per executed request the direct-mapped
                   DRC must retain — snfs-lint: allow hot-alloc *)
                svc.drc_reply.(slot) <- Some reply;
              reply_to reply))
  end

(* Enough retries that transient packet loss is very unlikely to be
   mistaken for a crashed client, but still finishing (~31 s) before the
   default client-side schedule (~63 s) would time the opener out. *)
let impatient config = { config with retries = 4 }

let call_once t config ~ctx ~src ~dst ~prog ~proc ~bulk args =
  let engine = Net.engine t.net in
  let xid = t.next_xid in
  t.next_xid <- xid + 1;
  (* one tuple-keyed service lookup per call, not one per transmission
     (a service registered between retransmissions of the same call is
     not a case the simulation produces) *)
  let dst_addr = Net.Host.addr dst in
  let svc =
    match t.memo_svc with
    | Some _ when t.memo_addr = dst_addr && String.equal t.memo_prog prog ->
        t.memo_svc
    | _ ->
        let s = Hashtbl.find_opt t.services (dst_addr, prog) in
        (match s with
        | Some _ ->
            t.memo_addr <- dst_addr;
            t.memo_prog <- prog;
            t.memo_svc <- s
        | None -> ());
        s
  in
  let info = match svc with Some s -> Some (proc_info s proc) | None -> None in
  let issued = Sim.Engine.now engine in
  let track = Net.Host.name src in
  let sp =
    if Obs.Trace.on () && Obs.Causal.keep ctx then
      Obs.Trace.span ~ts:issued ~cat:"rpc" ~name:(prog ^ "." ^ proc) ~track
        ~args:
          (Obs.Causal.arg ctx
             [ ("xid", Obs.Trace.Int xid);
               ("dst", Obs.Trace.Str (Net.Host.name dst));
               ("bytes", Obs.Trace.Int (Bytes.length args + bulk)) ])
        ()
    else Obs.Trace.none
  in
  let result : reply Sim.Ivar.t = Sim.Ivar.create engine in
  let reply_to reply =
    Net.send t.net ~src:dst ~dst:src
      ~bytes:(Bytes.length reply.data + reply.bulk)
      ~deliver:(fun () ->
        if not (Sim.Ivar.is_full result) then begin
          if Obs.Trace.on () then
            Obs.Trace.instant ~ts:(Sim.Engine.now engine) ~cat:"rpc"
              ~name:"reply" ~track
              ~args:[ ("xid", Obs.Trace.Int xid) ]
              ();
          Sim.Ivar.fill result reply
        end)
  in
  let transmit () =
    Net.send t.net ~src ~dst
      ~bytes:(Bytes.length args + bulk)
      ~deliver:(fun () ->
        match (svc, info) with
        | Some svc, Some info ->
            handle_request t svc info ~caller:src ~ctx ~xid ~proc ~args ~bulk
              ~reply_to
        | _ -> () (* no such program: silence, client times out *))
  in
  Net.Host.use_cpu src
    (config.client_cpu_per_call +. payload_cpu t (Bytes.length args + bulk));
  let rec attempt n timeout =
    transmit ();
    match Sim.Ivar.read_timeout result timeout with
    | Some reply ->
        Net.Host.use_cpu src (payload_cpu t (Bytes.length reply.data + reply.bulk));
        let now = Sim.Engine.now engine in
        (match info with
        | Some ({ lat_ok = Some h; _ } : proc_info) ->
            Stats.Histogram.add h (now -. issued)
        | Some info ->
            (* first success for this procedure: resolve the histogram
               through the slow path (which registers it) and cache it *)
            let h = Obs.Latency.histogram t.latencies ~prog ~proc in
            info.lat_ok <- Some h;
            Stats.Histogram.add h (now -. issued)
        | None -> Obs.Latency.record t.latencies ~prog ~proc (now -. issued));
        Obs.Trace.finish ~ts:now sp
          ~args:
            (if Obs.Trace.on () then
               [ ("status", Obs.Trace.Str "ok");
                 ("retries", Obs.Trace.Int n) ]
             else []);
        reply.data
    | None ->
        if n >= config.retries then begin
          let now = Sim.Engine.now engine in
          (* the failed call is part of the latency story too: record
             the time wasted before giving up under its own outcome *)
          Obs.Latency.record t.latencies ~outcome:Obs.Latency.Timeout ~prog
            ~proc (now -. issued);
          if Obs.Metrics.on () then
            Obs.Metrics.incr
              ~labels:[ ("prog", prog); ("proc", proc) ]
              "rpc_timeouts_total";
          if Obs.Trace.on () then
            Obs.Trace.instant ~ts:now ~cat:"rpc" ~name:"timeout" ~track
              ~args:
                [ ("proc", Obs.Trace.Str (prog ^ "." ^ proc));
                  ("xid", Obs.Trace.Int xid) ]
              ();
          Obs.Trace.finish ~ts:now sp
            ~args:
              (if Obs.Trace.on () then [ ("status", Obs.Trace.Str "timeout") ]
               else []);
          raise (Timeout { prog; proc })
        end
        else begin
          t.retransmissions <- t.retransmissions + 1;
          if Obs.Metrics.on () then
            Obs.Metrics.incr
              ~labels:[ ("prog", prog); ("proc", proc) ]
              "rpc_retransmits_total";
          if Obs.Trace.on () then
            Obs.Trace.instant ~ts:(Sim.Engine.now engine) ~cat:"rpc"
              ~name:"retransmit" ~track
              ~args:
                [ ("proc", Obs.Trace.Str (prog ^ "." ^ proc));
                  ("xid", Obs.Trace.Int xid);
                  ("attempt", Obs.Trace.Int (n + 1)) ]
              ();
          attempt (n + 1) (timeout *. config.backoff)
        end
  in
  (* manual unwind, not Fun.protect: the protect frame and its finally
     closure are measurable on a path taken once per RPC *)
  t.in_flight <- t.in_flight + 1;
  match attempt 0 config.timeout with
  | data ->
      t.in_flight <- t.in_flight - 1;
      data
  | exception e ->
      t.in_flight <- t.in_flight - 1;
      raise e

let call t ?config ?(ctx = Obs.Causal.none) ~src ~dst ~prog ~proc ?budget:b
    ?(bulk = 0) args =
  let config = match config with Some c -> c | None -> t.config in
  match b with
  | None -> call_once t config ~ctx ~src ~dst ~prog ~proc ~bulk args
  | Some b ->
      (* each round is a complete call (fresh xid, its own span and
         latency record); between rounds the caller sleeps out a
         bounded exponential backoff. Rounds stop as soon as the next
         backoff would not fit in the budget. *)
      let engine = Net.engine t.net in
      let started = Sim.Engine.now engine in
      let track = Net.Host.name src in
      let rec go backoff =
        match call_once t config ~ctx ~src ~dst ~prog ~proc ~bulk args with
        | data -> data
        | exception Timeout _ ->
            let waited = Sim.Engine.now engine -. started in
            if waited +. backoff >= b.give_up_after then begin
              if Obs.Metrics.on () then
                Obs.Metrics.incr
                  ~labels:[ ("prog", prog); ("proc", proc) ]
                  "rpc_unavailable_total";
              if Obs.Trace.on () then
                Obs.Trace.instant
                  ~ts:(Sim.Engine.now engine)
                  ~cat:"rpc" ~name:"unavailable" ~track
                  ~args:
                    [ ("proc", Obs.Trace.Str (prog ^ "." ^ proc));
                      ("waited", Obs.Trace.Float waited) ]
                  ();
              raise (Server_unavailable { prog; proc; waited })
            end
            else begin
              if Obs.Metrics.on () then
                Obs.Metrics.incr
                  ~labels:[ ("prog", prog); ("proc", proc) ]
                  "rpc_budget_retries_total";
              Sim.Engine.sleep engine backoff;
              go (Float.min (backoff *. 2.0) b.max_backoff)
            end
      in
      go b.initial_backoff
