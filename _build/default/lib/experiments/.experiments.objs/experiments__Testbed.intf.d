lib/experiments/testbed.mli: Blockcache Diskm Kentfs Netsim Nfs Rfs Sim Snfs Stats Workload
