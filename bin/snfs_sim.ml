(* Command-line driver: regenerate any of the paper's tables and
   figures, or run individual benchmarks with custom parameters. *)

open Cmdliner

let protocol_of_string = function
  | "local" -> Ok Experiments.Testbed.Local
  | "nfs" -> Ok (Experiments.Testbed.Nfs_proto Nfs.Nfs_client.default_config)
  | "nfs-fixed" ->
      Ok
        (Experiments.Testbed.Nfs_proto
           { Nfs.Nfs_client.default_config with invalidate_on_close = false })
  | "snfs" ->
      Ok (Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config)
  | "snfs-dc" ->
      Ok
        (Experiments.Testbed.Snfs_proto
           { Snfs.Snfs_client.default_config with delayed_close = true })
  | "rfs" -> Ok (Experiments.Testbed.Rfs_proto Rfs.Rfs_client.default_config)
  | "kent" ->
      Ok (Experiments.Testbed.Kent_proto Kentfs.Kent_client.default_config)
  | s -> Error (`Msg (Printf.sprintf "unknown protocol %S" s))

let protocol_conv =
  Arg.conv
    ( protocol_of_string,
      fun fmt p ->
        Format.pp_print_string fmt (Experiments.Testbed.protocol_name p) )

let protocol_arg =
  let doc =
    "File system protocol: local, nfs, nfs-fixed (no invalidate-on-close \
     bug), snfs, snfs-dc (delayed close), rfs, kent (block granularity)."
  in
  Arg.(
    value
    & opt protocol_conv
        (Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config)
    & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)

(* ---- table command ---- *)

let known_tables =
  [
    ("5-1", Experiments.Andrew_exp.table_5_1);
    ("5-2", Experiments.Andrew_exp.table_5_2);
    ("5-3", Experiments.Sort_exp.table_5_3);
    ("5-4", Experiments.Sort_exp.table_5_4);
    ("5-5", Experiments.Sort_exp.table_5_5);
    ("5-6", Experiments.Sort_exp.table_5_6);
  ]

let table_cmd =
  let id =
    let doc = "Table to regenerate: 5-1, 5-2, 5-3, 5-4, 5-5, or 5-6." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TABLE" ~doc)
  in
  let run id =
    match List.assoc_opt id known_tables with
    | Some f ->
        print_string (f ());
        Ok ()
    | None -> Error (Printf.sprintf "unknown table %S" id)
  in
  Cmd.v
    (Cmd.info "table" ~doc:"Regenerate one of the paper's tables.")
    Term.(term_result' (const run $ id))

let figures_cmd =
  let run () =
    print_string (Experiments.Andrew_exp.figures_5_1_and_5_2 ())
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate Figures 5-1 and 5-2.")
    Term.(const run $ const ())

let all_cmd =
  let run () =
    List.iter (fun (_, f) -> print_string (f ())) known_tables;
    print_string (Experiments.Andrew_exp.figures_5_1_and_5_2 ());
    print_string (Experiments.Sort_exp.reread_check ())
  in
  Cmd.v
    (Cmd.info "all" ~doc:"Regenerate every table and figure.")
    Term.(const run $ const ())

(* ---- single benchmark runs ---- *)

let update_arg =
  let doc = "Disable the periodic /etc/update write-back daemon." in
  Arg.(value & flag & info [ "no-update" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace-event JSON file of the run to $(docv); load it \
     in ui.perfetto.dev or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let latency_arg =
  let doc = "Print the per-procedure RPC round-trip latency table." in
  Arg.(value & flag & info [ "latency-table" ] ~doc)

let metrics_arg =
  let doc =
    "Export the run's metrics registry to $(docv) (format chosen by \
     $(b,--metrics-format))."
  in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let metrics_format_arg =
  let doc =
    "Metrics export format: prom (Prometheus text exposition, \
     point-in-time) or csv (sampled time series)."
  in
  Arg.(
    value
    & opt (enum [ ("prom", `Prom); ("csv", `Csv) ]) `Prom
    & info [ "metrics-format" ] ~docv:"FMT" ~doc)

let report_arg =
  let doc =
    "Print a plain-text flight report (counters, gauges, histograms, RPC \
     latency) after the run."
  in
  Arg.(value & flag & info [ "report" ] ~doc)

let with_observability ~trace_file ~latency_table ~metrics_file ~metrics_format
    ~report f =
  (* open the outputs before the (possibly long) run so a bad path fails
     in milliseconds, not after the whole simulation *)
  let open_sink path =
    match open_out path with
    | oc -> (path, oc)
    | exception Sys_error msg ->
        Printf.eprintf "snfs_sim: cannot write output file: %s\n" msg;
        exit 1
  in
  let sink = Option.map open_sink trace_file in
  let msink = Option.map open_sink metrics_file in
  let tracer = Option.map (fun _ -> Obs.Trace.create ()) sink in
  let metrics =
    if Option.is_some msink || report then Some (Obs.Metrics.create ())
    else None
  in
  let latencies = f ?trace:tracer ?metrics () in
  (match (tracer, sink) with
  | Some tr, Some (path, oc) ->
      output_string oc (Obs.Chrome.to_string tr);
      close_out oc;
      Printf.printf "trace: %d events -> %s\n" (Obs.Trace.count tr) path
  | _ -> ());
  (match (metrics, msink) with
  | Some m, Some (path, oc) ->
      output_string oc
        (match metrics_format with
        | `Prom -> Obs.Metrics.to_prometheus m
        | `Csv -> Obs.Metrics.to_csv m);
      close_out oc;
      Printf.printf "metrics: %s -> %s\n"
        (match metrics_format with `Prom -> "prometheus" | `Csv -> "csv")
        path
  | _ -> ());
  (match metrics with
  | Some m when report -> print_string (Obs.Metrics.report ~latency:latencies m)
  | _ -> ());
  if latency_table then print_string (Obs.Latency.table latencies)

let andrew_cmd, andrew_term =
  let tmp_arg =
    let doc = "Where /tmp lives: local or remote." in
    Arg.(value & opt string "remote" & info [ "tmp" ] ~docv:"WHERE" ~doc)
  in
  let run protocol tmp no_update trace_file latency_table metrics_file
      metrics_format report =
    let tmp =
      match tmp with
      | "local" -> Experiments.Testbed.Tmp_local
      | _ -> Experiments.Testbed.Tmp_remote
    in
    with_observability ~trace_file ~latency_table ~metrics_file ~metrics_format
      ~report
    @@ fun ?trace ?metrics () ->
    let phases, counts, latencies =
      Experiments.Driver.run ?trace ?metrics (fun engine ->
          let tb =
            Experiments.Testbed.create engine ~protocol ~tmp
              ~update_interval:(if no_update then None else Some 30.0)
              ()
          in
          let ctx = Experiments.Testbed.ctx tb in
          let config = Workload.Andrew.default_config in
          let tree = Workload.Andrew.setup ctx config in
          Experiments.Testbed.drain tb ~horizon:65.0;
          let before = Experiments.Testbed.rpc_counts tb in
          let phases = Workload.Andrew.run ctx config tree in
          let counts =
            Stats.Counter.diff (Experiments.Testbed.rpc_counts tb) before
          in
          (phases, counts, Netsim.Rpc.latencies (Experiments.Testbed.rpc tb)))
    in
    Printf.printf
      "Andrew (%s): MakeDir %.1f  Copy %.1f  ScanDir %.1f  ReadAll %.1f  \
       Make %.1f  Total %.1f\n"
      (Experiments.Testbed.protocol_name protocol)
      phases.Workload.Andrew.makedir phases.Workload.Andrew.copy
      phases.Workload.Andrew.scandir phases.Workload.Andrew.readall
      phases.Workload.Andrew.make
      (Workload.Andrew.total phases);
    List.iter
      (fun (name, n) -> Printf.printf "  %-10s %6d\n" name n)
      (Stats.Counter.to_list counts);
    latencies
  in
  let term =
    Term.(
      const run $ protocol_arg $ tmp_arg $ update_arg $ trace_arg
      $ latency_arg $ metrics_arg $ metrics_format_arg $ report_arg)
  in
  (Cmd.v (Cmd.info "andrew" ~doc:"Run the Andrew benchmark once.") term, term)

let sort_cmd =
  let size_arg =
    let doc = "Input size in kilobytes." in
    Arg.(value & opt int 2816 & info [ "input-kb" ] ~docv:"KB" ~doc)
  in
  let run protocol input_kb no_update trace_file latency_table metrics_file
      metrics_format report =
    with_observability ~trace_file ~latency_table ~metrics_file ~metrics_format
      ~report
    @@ fun ?trace ?metrics () ->
    let r =
      Experiments.Sort_exp.run_sort ?trace ?metrics ~protocol
        ~update:(if no_update then None else Some 30.0)
        ~input_kb
        ~label:(Experiments.Testbed.protocol_name protocol)
        ()
    in
    Printf.printf
      "sort %d kB on %s: %.1f s (temp written %d kB, client CPU busy %.1f s)\n"
      input_kb r.Experiments.Sort_exp.label r.Experiments.Sort_exp.elapsed
      (r.Experiments.Sort_exp.temp_bytes / 1024)
      r.Experiments.Sort_exp.client_busy;
    List.iter
      (fun (name, n) -> Printf.printf "  %-10s %6d\n" name n)
      (Stats.Counter.to_list r.Experiments.Sort_exp.counts);
    r.Experiments.Sort_exp.latencies
  in
  Cmd.v
    (Cmd.info "sort" ~doc:"Run the external-sort benchmark once.")
    Term.(
      const run $ protocol_arg $ size_arg $ update_arg $ trace_arg
      $ latency_arg $ metrics_arg $ metrics_format_arg $ report_arg)

let sharing_cmd =
  let run () = print_string (Experiments.Sharing_exp.table ()) in
  Cmd.v
    (Cmd.info "sharing"
       ~doc:
         "Run the shared-database extension experiment (concurrent           write-sharing, all protocols).")
    Term.(const run $ const ())

let trace_cmd =
  let run () = print_string (Experiments.Trace_exp.table ()) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Replay a realistic trace-style operation mix under every protocol.")
    Term.(const run $ const ())

let ablations_cmd =
  let run () =
    print_string (Experiments.Ablation_exp.table ());
    print_string (Experiments.Ablation_exp.write_back_policy_table ())
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Run the design-choice ablations on the Andrew benchmark.")
    Term.(const run $ const ())

let campaign_cmd =
  let jobs_arg =
    let doc =
      "Run the campaign's configurations on $(docv) OCaml domains. \
       Results (and their order) are byte-identical to --jobs 1; only \
       the wall-clock time changes."
    in
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let run jobs =
    if jobs < 1 then Error "jobs must be >= 1"
    else begin
      let runs = Experiments.Campaign.run ~jobs (Experiments.Campaign.default ()) in
      print_string (Experiments.Campaign.table runs);
      Ok ()
    end
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run the standard campaign (every protocol stack and design \
          variant, one Andrew run each), optionally fanned out over \
          domains with --jobs.")
    Term.(term_result' (const run $ jobs_arg))

(* ---- offline trace analysis ---- *)

let read_whole_file path =
  match open_in_bin path with
  | exception Sys_error msg ->
      Printf.eprintf "snfs_sim: cannot read trace file: %s\n" msg;
      exit 1
  | ic ->
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s

let analyze_files files =
  match
    List.map
      (fun path ->
        let label = Filename.remove_extension (Filename.basename path) in
        Obs.Analyze.of_chrome ~label (read_whole_file path))
      files
  with
  | runs ->
      print_string (Obs.Analyze.report runs);
      Ok ()
  | exception Obs.Json.Error msg ->
      Error (Printf.sprintf "malformed trace: %s" msg)

let analyze_cmd =
  let files_arg =
    let doc =
      "Chrome trace-event JSON files (as written by $(b,--trace)) to \
       analyze; one report section per file."
    in
    Arg.(non_empty & pos_all file [] & info [] ~docv:"TRACE" ~doc)
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct per-operation causal trees from trace files and \
          report the critical-path decomposition, callback-storm profile, \
          and per-protocol consistency tax.")
    Term.(term_result' (const analyze_files $ files_arg))

let crash_cmd =
  let seed_arg =
    let doc = "Fault-schedule seed (the whole run is a pure function of it)." in
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc)
  in
  let crash_protocol_arg =
    let doc =
      "Protocol to run the crash schedule on: nfs, snfs, rfs, kent, or all."
    in
    Arg.(value & opt string "all" & info [ "p"; "protocol" ] ~docv:"PROTO" ~doc)
  in
  let run proto seed trace_file latency_table metrics_file metrics_format
      report =
    let protocols =
      match proto with
      | "all" -> Ok Experiments.Crash_exp.all_protocols
      | "nfs" -> Ok [ Experiments.Crash_exp.Nfs ]
      | "snfs" -> Ok [ Experiments.Crash_exp.Snfs ]
      | "rfs" -> Ok [ Experiments.Crash_exp.Rfs ]
      | "kent" -> Ok [ Experiments.Crash_exp.Kent ]
      | s -> Error (Printf.sprintf "unknown protocol %S" s)
    in
    match protocols with
    | Error _ as e -> e
    | Ok protocols ->
        List.iter print_endline
          (Experiments.Crashplan.describe
             (Experiments.Crashplan.generate ~seed ()));
        (* when the run is not fully traced, keep a bounded flight ring so
           an oracle failure still leaves a post-mortem trace behind *)
        if trace_file = None then Obs.Flight.arm ();
        let verdicts = ref [] in
        (with_observability ~trace_file ~latency_table ~metrics_file
           ~metrics_format ~report
        @@ fun ?trace ?metrics () ->
        List.iter
          (fun protocol ->
            verdicts :=
              Experiments.Crash_exp.run ?trace ?metrics ~protocol ~seed ()
              :: !verdicts)
          protocols;
        (* the per-run RPC latency histograms die with each engine; the
           flight report covers the campaign through the shared metrics
           registry instead *)
        Obs.Latency.create ());
        let verdicts = List.rev !verdicts in
        print_string (Experiments.Crash_exp.table verdicts);
        (match Obs.Flight.last () with
        | Some (reason, json) ->
            let path = "crash-flight.json" in
            let oc = open_out path in
            output_string oc json;
            close_out oc;
            Printf.printf "flight recorder (%s) -> %s\n" reason path
        | None -> ());
        Obs.Flight.disarm ();
        if List.for_all (fun v -> v.Experiments.Crash_exp.ok) verdicts then
          Ok ()
        else Error "crash campaign failed"
  in
  let term =
    Term.(
      term_result'
        (const run $ crash_protocol_arg $ seed_arg $ trace_arg $ latency_arg
       $ metrics_arg $ metrics_format_arg $ report_arg))
  in
  Cmd.v
    (Cmd.info "crash"
       ~doc:
         "Run the deterministic crash campaign (server crash mid-Andrew, \
          client crashes without close, partition that heals) and verify \
          the survivors' data.")
    term

let scaling_cmd =
  let run () = print_string (Experiments.Scaling_exp.table ()) in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Run the client-scaling extension experiment (N clients, one server).")
    Term.(const run $ const ())

let main =
  (* andrew is the default command: `snfs_sim --trace out.json` traces
     one Andrew run without naming a subcommand *)
  Cmd.group ~default:andrew_term
    (Cmd.info "snfs_sim" ~version:"1.0"
       ~doc:
         "Spritely NFS reproduction: regenerate the tables and figures of \
          Srinivasan & Mogul, SOSP 1989, from a discrete-event simulation.")
    [ table_cmd; figures_cmd; all_cmd; andrew_cmd; sort_cmd; campaign_cmd; crash_cmd; scaling_cmd; ablations_cmd; trace_cmd; sharing_cmd; analyze_cmd ]

let () = exit (Cmd.eval main)
