lib/workload/trace.ml: App Int64 List Printf Sim Stats Vfs
