(* snfs_lint — determinism / protocol-hygiene lint over the source
   tree. Prints GNU-style [path:line: error: [rule] message] findings
   and exits non-zero if there are any. *)

let () =
  let root = if Array.length Sys.argv > 1 then Sys.argv.(1) else "." in
  let findings = Check.Lint.scan_tree root in
  List.iter (fun f -> print_endline (Check.Lint.to_string f)) findings;
  match findings with
  | [] -> ()
  | fs ->
      Printf.eprintf "snfs_lint: %d finding(s)\n" (List.length fs);
      exit 1
