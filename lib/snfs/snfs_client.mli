(** The Spritely NFS client (paper Sections 3, 4.2 and 6).

    Differences from the NFS client:
    - explicit [open]/[close] RPCs; the open reply says whether the
      file may be cached and carries the version numbers that decide
      whether the client's cached copy is still valid (Section 3.1) —
      there are *no* periodic attribute probes;
    - cachable files use the traditional Unix delayed-write policy:
      dirty blocks sit in the client cache until the 30-second syncer,
      eviction, a callback, or an fsync pushes them out — and deleting
      the file first cancels them entirely (Section 5.4);
    - non-cachable (write-shared) files bypass the cache in both
      directions, with read-ahead disabled and attributes always
      fetched from the server (Section 4.2.1);
    - the client runs an RPC service to field the server's callbacks
      (write back and/or invalidate, Section 4.2.2);
    - optional extensions from Section 6: {b delayed close} (a close is
      withheld in anticipation of a quick reopen; callbacks and an idle
      timer force it out) and a {b keepalive} daemon that detects
      server reboots and replays open state ([reopen]) to rebuild the
      server's tables (Section 2.4). *)

type config = {
  cache_blocks : int;
  read_ahead : bool;
  delayed_close : bool;  (** Section 6.2 extension; off in the paper *)
  delayed_close_timeout : float;
      (** spontaneous close after this much idle time *)
  retry_budget : float option;
      (** seconds of server outage to ride out per RPC before
          {!Netsim.Rpc.Server_unavailable}; [None] = classic timeout.
          Size it past reboot-plus-grace so opens retried during the
          Section 2.4 grace period eventually go through. *)
}

val default_config : config

type t

val mount :
  Netsim.Rpc.t ->
  client:Netsim.Net.Host.t ->
  server:Netsim.Net.Host.t ->
  root:Nfs.Wire.fh ->
  ?config:config ->
  ?name:string ->
  unit ->
  t

val fs : t -> Vfs.Fs.t
val cache : t -> Blockcache.Cache.t

(** Start the client's delayed-write daemon (the 30 s [/etc/update]
    sync); Table 5-5 disables it. *)
val start_syncer : t -> interval:float -> unit

(** Start the keepalive daemon: pings the server every [interval]
    seconds; on a boot-epoch change, re-sends this client's open state
    so the server can rebuild its tables. *)
val start_keepalive : t -> interval:float -> unit

(** Immediately run the recovery hand-shake (what the keepalive daemon
    does upon detecting a reboot). *)
val recover_now : t -> unit

(** Opens satisfied locally thanks to delayed close (Section 6.2). *)
val delayed_close_hits : t -> int

(** Callbacks served (write-back and/or invalidate). *)
val callbacks_served : t -> int

(** Oracle hook: force every delayed-write block back to the server
    (what a write-back callback for every dirty file would do), so the
    consistency oracle can diff the server-side contents against its
    serial reference model. *)
val quiesce : t -> unit
