lib/workload/app.mli: Netsim Sim Vfs
