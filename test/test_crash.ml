(* The deterministic crash campaign end-to-end: each protocol stack
   survives the seeded schedule (server crash and reboot mid-Andrew,
   two client crashes without close, a partition that heals) with zero
   acknowledged-write loss, SNFS additionally completing the whole
   client-lifecycle story; and the same seed reproduces the run
   byte-for-byte, trace and metrics included. *)

module CE = Experiments.Crash_exp

let seed = 42L

let check_verdict (v : CE.verdict) =
  Alcotest.(check int)
    (v.CE.protocol ^ ": no acknowledged-write loss")
    0 v.CE.divergent;
  Alcotest.(check bool)
    (v.CE.protocol ^ ": surviving writes verified")
    true
    (v.CE.files_checked >= 2);
  Alcotest.(check bool) (v.CE.protocol ^ ": verdict ok") true v.CE.ok

let test_protocol protocol () = check_verdict (CE.run ~protocol ~seed ())

let test_snfs_lifecycle () =
  let v = CE.run ~protocol:CE.Snfs ~seed () in
  check_verdict v;
  match v.CE.lifecycle with
  | None -> Alcotest.fail "SNFS verdict carries no lifecycle stats"
  | Some st ->
      Alcotest.(check bool) "laundromat ran" true
        (st.Snfs.Snfs_server.laundromat_runs > 0);
      Alcotest.(check bool) "crashed clients demoted" true
        (st.Snfs.Snfs_server.demotions >= 3);
      Alcotest.(check int) "client1 reaped from Courtesy (lifetime)" 1
        st.Snfs.Snfs_server.reaped_courtesy;
      Alcotest.(check int) "client2 reaped as Expirable (conflict)" 1
        st.Snfs.Snfs_server.reaped_expirable;
      Alcotest.(check bool) "partitioned client revived" true
        (st.Snfs.Snfs_server.revivals >= 1);
      Alcotest.(check bool)
        "courtesy client resumed without reopen or reap" true
        v.CE.courtesy_resumed

(* same seed, observability on: the trace JSON and the metrics CSV of
   two runs must be byte-identical *)
let test_determinism () =
  let observe () =
    let trace = Obs.Trace.create () in
    let metrics = Obs.Metrics.create () in
    let v = CE.run ~trace ~metrics ~protocol:CE.Snfs ~seed () in
    (v, Obs.Chrome.to_string trace, Obs.Metrics.to_csv metrics)
  in
  let v1, trace1, csv1 = observe () in
  let v2, trace2, csv2 = observe () in
  Alcotest.(check bool) "verdicts identical" true (v1 = v2);
  Alcotest.(check bool) "traces are non-trivial" true
    (String.length trace1 > 10_000);
  Alcotest.(check bool) "trace JSON byte-identical" true (trace1 = trace2);
  Alcotest.(check bool) "metrics CSV byte-identical" true (csv1 = csv2)

let () =
  Alcotest.run "crash"
    [
      ( "campaign",
        [
          Alcotest.test_case "nfs" `Slow (test_protocol CE.Nfs);
          Alcotest.test_case "snfs lifecycle" `Slow test_snfs_lifecycle;
          Alcotest.test_case "rfs" `Slow (test_protocol CE.Rfs);
          Alcotest.test_case "kent" `Slow (test_protocol CE.Kent);
        ] );
      ( "determinism",
        [
          Alcotest.test_case "same seed, same bytes" `Slow test_determinism;
        ] );
    ]
