(** The SNFS server state table (paper Section 4.3).

    This is the paper's central contribution, implemented as a pure
    data structure: no I/O, no simulation dependencies. The SNFS server
    wraps it, performing the callback RPCs this module *prescribes*.

    Each file the server has recently seen has an entry recording its
    version numbers and a client-information block per client host
    (reader/writer open counts, whether that client was allowed to
    cache). {!open_file} and {!close_file} perform the state
    transitions of Table 4-1; [open_file] additionally returns the list
    of callbacks the server must deliver to other clients *before*
    replying, and whether the opening client may cache the file.

    The derived 7-state view ({!state}) matches the paper's
    nomenclature: CLOSED, CLOSED_DIRTY, ONE_READER, ONE_RDR_DIRTY,
    MULT_READERS, ONE_WRITER, WRITE_SHARED. One deliberate subtlety:
    after a write-sharing episode ends (say the writer closes, leaving
    one reader), the remaining clients keep caching *disabled* until
    they re-open — the server only grants cachability at open time — so
    a derived ONE_READER state can coexist with a cache-disabled
    client. *)

type client_id = int

type mode = Read | Write

type state =
  | Closed
  | Closed_dirty
  | One_reader
  | One_rdr_dirty
  | Mult_readers
  | One_writer
  | Write_shared

val state_to_string : state -> string

(** A callback the server must perform before completing the open that
    triggered it. [writeback] asks the target to return dirty blocks;
    [invalidate] asks it to drop its cache and stop caching. *)
type callback = { target : client_id; writeback : bool; invalidate : bool }

type open_result = {
  cache_enabled : bool;  (** may the opening client cache this file? *)
  version : Version.t;  (** latest version (bumped if opening to write) *)
  prev_version : Version.t;
  callbacks : callback list;  (** deliver these, then reply *)
}

type t

(** [create ()] makes an empty table. [max_entries] bounds memory as in
    Section 4.3.1 (default 1000). *)
val create : ?max_entries:int -> unit -> t

val entry_count : t -> int
val max_entries : t -> int

(** Independent deep copy. The model checker ({!module:Check}, when
    linked) branches the table at every explored interleaving, so this
    must be cheap and must share no mutable state with the original. *)
val copy : t -> t

(** Approximate kernel-memory footprint, using the paper's accounting
    (Section 4.5: 68 bytes per entry plus a client block per client,
    "up to 1000 simultaneously open files ... about 70 kbytes"). *)
val approx_bytes : t -> int

(** Raised by {!open_file} when the table is full and nothing is
    reclaimable (every entry has the file actively open). *)
exception Table_full

(** [open_file t ~file ~client ~mode] records an open and returns the
    consistency verdict and required callbacks. If the table is full,
    closed entries are reclaimed first; the reclamation callbacks are
    prepended to the result's list. *)
val open_file : t -> file:int -> client:client_id -> mode:mode -> open_result

(** [close_file t ~file ~client ~mode] records a close; [mode] must
    match the corresponding open (Section 3.1). A final close by a
    cache-enabled writer records that client as last writer
    (CLOSED_DIRTY). Unknown opens raise [Invalid_argument]. *)
val close_file : t -> file:int -> client:client_id -> mode:mode -> unit

(** The last writer has returned / discarded its dirty blocks (the
    server observed a successful write-back callback, or the client
    reported the data flushed): CLOSED_DIRTY decays to CLOSED. *)
val note_clean : t -> file:int -> client:client_id -> unit

(** The file was removed; forget it entirely. *)
val remove_file : t -> file:int -> unit

(** Forget everything one client holds (it crashed, Section 3.2). Any
    entry for which it was the (possibly dirty) last writer is marked
    {!was_inconsistent}. *)
val forget_client : t -> client_id -> unit

(** True if a crash of the last writer may have lost dirty data for
    this file; cleared on the next version bump. *)
val was_inconsistent : t -> file:int -> bool

(** {2 Observation} *)

(** Derived paper-style state (Closed if the file has no entry). *)
val state : t -> file:int -> state

val version_of : t -> file:int -> Version.t

(** Whether the given client was granted cachability at its last open
    of this file (false if unknown). *)
val can_cache : t -> file:int -> client:client_id -> bool

(** Clients with the file open, with (readers, writers) counts. *)
val openers : t -> file:int -> (client_id * int * int) list

val last_writer : t -> file:int -> client_id option

(** Files with live entries (for recovery tests and reclamation). *)
val files : t -> int list

(** The least-recently-active entry that still has clients open, with
    those clients — the candidate for a Section 6.2 "relinquish"
    callback when the table fills up with apparently-open files left
    behind by delayed-close clients. Activity is measured by operation
    order, not wall-clock time (this module has no clock). *)
val least_recently_active_open : t -> (int * client_id list) option

(** {2 Crash recovery (Section 2.4 / Welch's mechanism)}

    After a server reboot the table is reconstructed from the clients:
    each client reports, per file, its open counts, whether it was
    caching, and whether it may hold dirty blocks. *)

type client_report = {
  r_client : client_id;
  r_file : int;
  r_readers : int;
  r_writers : int;
  r_can_cache : bool;
  r_dirty : bool;  (** client may hold dirty blocks (open or closed) *)
  r_version : Version.t;  (** version the client holds *)
}

(** Current table as reports (what clients would collectively say). *)
val to_reports : t -> client_report list

(** Rebuild a table from client reports. The version counter resumes
    above the highest reported version. *)
val of_reports : ?max_entries:int -> client_report list -> t

(** Merge one report into a (possibly freshly rebooted) table — the
    incremental form servers use while clients trickle in their reopen
    messages during the recovery grace period. *)
val merge_report : t -> client_report -> unit

(** Structural equality of the consistency-relevant content, for
    recovery tests. *)
val equal : t -> t -> bool

val pp_state : Format.formatter -> state -> unit
