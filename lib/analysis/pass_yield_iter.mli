(** Blocking inside live table iteration.

    [Hashtbl.iter]/[fold] iterate the live table — no snapshot. Under
    cooperative scheduling, a per-binding function that reaches a yield
    point (judged by the interprocedural may-yield summaries, so
    cross-library wrappers count) lets another task mutate the table
    mid-iteration, which OCaml's [Hashtbl] documents as undefined
    behaviour. In the simulator it surfaces as clients skipped during a
    recall broadcast or visited twice by the laundromat.

    The fix idiom is snapshot-then-iterate: project the bindings into a
    list first, then walk the list (the list walk may then be a
    [fanout] finding — a cost question, not a soundness one). Scope:
    [lib/], [bench/] and [examples/]. *)

val pass : Pass.t
