type value = Str of string | Int of int | Float of float | Bool of bool

type kind = Begin | End | Instant | Flow_start | Flow_end

type event = {
  ts : float;
  cat : string;
  name : string;
  kind : kind;
  track : string;
  id : int;
  args : (string * value) list;
}

type t = {
  mutable events : event list; (* newest first *)
  mutable next_span : int;
  mutable count : int;
  mutable live : int; (* length of [events], for ring truncation *)
  id_base : int;
  sample_every : int;
  limit : int; (* 0 = unbounded; otherwise keep the newest [limit] *)
  mutable next_op : int; (* operation ordinal, drives head sampling *)
}

let create ?(id_base = 0) ?(sample_every = 1) ?(limit = 0) () =
  if id_base < 0 then invalid_arg "Trace.create: id_base must be >= 0";
  if sample_every < 1 then
    invalid_arg "Trace.create: sample_every must be >= 1";
  if limit < 0 then invalid_arg "Trace.create: limit must be >= 0";
  {
    events = [];
    next_span = id_base + 1;
    count = 0;
    live = 0;
    id_base;
    sample_every;
    limit;
    next_op = 0;
  }

let id_base t = t.id_base
let sample_every t = t.sample_every
let limit t = t.limit

(* The installed tracer. A single mutable slot (rather than a tracer
   threaded through every constructor) keeps the disabled case to one
   load-and-compare per probe site, which is what makes tracing free
   when off. Determinism is unaffected: the slot only selects the sink;
   all timestamps and ids come from the simulation itself.

   The slot is domain-local state (Domain.DLS), not a process-global
   ref: each domain of a parallel campaign (Experiments.Sweep) installs
   its own tracer and never observes a sibling's. With a shared ref,
   the last domain to install would silently receive every domain's
   events (see test_sweep's seeded-bug demonstration). Within one
   domain the discipline is unchanged: install around a run, uninstall
   after. *)
let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Cross-domain count of installed tracers, mirroring Obs.Metrics:
   the off case of [on] must be one atomic load, not a DLS call. *)
let installed_domains = Atomic.make 0

let install t =
  (match Domain.DLS.get slot with
  | None -> Atomic.incr installed_domains
  | Some _ -> ());
  Domain.DLS.set slot (Some t)

let uninstall () =
  match Domain.DLS.get slot with
  | None -> ()
  | Some _ ->
      Atomic.decr installed_domains;
      Domain.DLS.set slot None

let current () = Domain.DLS.get slot

(* snfs-hot *)
let on () =
  Atomic.get installed_domains > 0
  && match Domain.DLS.get slot with None -> false | Some _ -> true

(* Keep the newest [limit] events. The list is newest-first, so the
   flight-recorder ring is a prefix; truncation runs once per [limit]
   emits (amortized O(1)) rather than on every emit. *)
let truncate tr =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | e :: rest -> e :: take (n - 1) rest
  in
  tr.events <- take tr.limit tr.events;
  tr.live <- tr.limit

let emit tr ev =
  tr.events <- ev :: tr.events;
  tr.count <- tr.count + 1;
  if tr.limit > 0 then begin
    tr.live <- tr.live + 1;
    if tr.live >= 2 * tr.limit then truncate tr
  end

let instant ?(track = "sim") ?(args = []) ~ts ~cat ~name () =
  match current () with
  | None -> ()
  | Some tr -> emit tr { ts; cat; name; kind = Instant; track; id = 0; args }

(* Head-based sampling happens at mint time, on the operation ordinal:
   an operation is either fully traced or fully dropped, so sampled
   trees are always complete. 0 means "no tracer"; -1 means "sampled
   out" (downstream probe sites must then skip emission). *)
let mint_op tr =
  let ordinal = tr.next_op in
  tr.next_op <- ordinal + 1;
  if tr.sample_every > 1 && ordinal mod tr.sample_every <> 0 then -1
  else begin
    let id = tr.next_span in
    tr.next_span <- id + 1;
    id
  end

let mint () = match current () with None -> 0 | Some tr -> mint_op tr

type span =
  | No_span
  | Span of { tracer : t; id : int; cat : string; name : string; track : string }

let none = No_span

let span ?(track = "sim") ?(args = []) ~ts ~cat ~name () =
  match current () with
  | None -> No_span
  | Some tr ->
      let id = tr.next_span in
      tr.next_span <- id + 1;
      emit tr { ts; cat; name; kind = Begin; track; id; args };
      Span { tracer = tr; id; cat; name; track }

(* A span under a caller-chosen id (the causal op id), so the Begin
   event is the root of the operation tree the analyzer reconstructs. *)
let span_with_id ?(track = "sim") ?(args = []) ~ts ~cat ~name ~id () =
  match current () with
  | None -> No_span
  | Some tr ->
      emit tr { ts; cat; name; kind = Begin; track; id; args };
      Span { tracer = tr; id; cat; name; track }

(* ends into the span's own tracer, so a span that outlives the
   install window still closes properly *)
let finish ?(args = []) ~ts sp =
  match sp with
  | No_span -> ()
  | Span s ->
      emit s.tracer
        { ts; cat = s.cat; name = s.name; kind = End; track = s.track;
          id = s.id; args }

(* Chrome flow events: a [flow_start] on the inducing operation's
   track and a [flow_end] on the induced work's track, both keyed by
   the inducing op id, make Perfetto draw an arrow from cause to
   effect (callbacks, recalls, invalidations). *)
let flow_start ?(track = "sim") ?(args = []) ~ts ~id () =
  match current () with
  | None -> ()
  | Some tr ->
      emit tr
        { ts; cat = "flow"; name = "induce"; kind = Flow_start; track; id; args }

let flow_end ?(track = "sim") ?(args = []) ~ts ~id () =
  match current () with
  | None -> ()
  | Some tr ->
      emit tr
        { ts; cat = "flow"; name = "induce"; kind = Flow_end; track; id; args }

let events t =
  if t.limit > 0 && t.live > t.limit then truncate t;
  List.rev t.events

let count t = t.count

let with_tracer t f =
  install t;
  Fun.protect ~finally:uninstall f
