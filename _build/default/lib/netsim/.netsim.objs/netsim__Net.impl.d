lib/netsim/net.ml: List Printf Sim
