lib/nfs/wire.ml: List Localfs Netsim Printf Xdr
