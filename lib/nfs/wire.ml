type fh = { fsid : int; ino : int; gen : int }

let enc_fh e { fsid; ino; gen } =
  Xdr.Enc.uint32 e fsid;
  Xdr.Enc.uint32 e ino;
  Xdr.Enc.uint32 e gen

let dec_fh d =
  let fsid = Xdr.Dec.uint32 d in
  let ino = Xdr.Dec.uint32 d in
  let gen = Xdr.Dec.uint32 d in
  { fsid; ino; gen }

let ftype_code = function Localfs.File -> 1 | Localfs.Dir -> 2

let ftype_of_code = function
  | 1 -> Localfs.File
  | 2 -> Localfs.Dir
  | c -> raise (Xdr.Error (Printf.sprintf "bad ftype %d" c))

let enc_attrs e (a : Localfs.attrs) =
  Xdr.Enc.enum e (ftype_code a.ftype);
  Xdr.Enc.uint32 e a.ino;
  Xdr.Enc.uint32 e a.gen;
  Xdr.Enc.uint32 e a.size;
  Xdr.Enc.uint32 e a.nlink;
  Xdr.Enc.float64 e a.mtime;
  Xdr.Enc.float64 e a.ctime

let dec_attrs d : Localfs.attrs =
  let ftype = ftype_of_code (Xdr.Dec.enum d) in
  let ino = Xdr.Dec.uint32 d in
  let gen = Xdr.Dec.uint32 d in
  let size = Xdr.Dec.uint32 d in
  let nlink = Xdr.Dec.uint32 d in
  let mtime = Xdr.Dec.float64 d in
  let ctime = Xdr.Dec.float64 d in
  { ino; gen; ftype; size; nlink; mtime; ctime }

let status_code = function
  | Ok () -> 0
  | Error Localfs.Noent -> 2
  | Error Localfs.Exist -> 17
  | Error Localfs.Notdir -> 20
  | Error Localfs.Isdir -> 21
  | Error Localfs.Notempty -> 66
  | Error Localfs.Stale -> 70
  | Error Localfs.Again -> 11

let status_of_code = function
  | 0 -> Ok ()
  | 2 -> Error Localfs.Noent
  | 17 -> Error Localfs.Exist
  | 20 -> Error Localfs.Notdir
  | 21 -> Error Localfs.Isdir
  | 66 -> Error Localfs.Notempty
  | 70 -> Error Localfs.Stale
  | 11 -> Error Localfs.Again
  | c -> raise (Xdr.Error (Printf.sprintf "bad status %d" c))

let enc_status e s = Xdr.Enc.enum e (status_code s)
let dec_status d = status_of_code (Xdr.Dec.enum d)

let p_lookup = "lookup"
let p_getattr = "getattr"
let p_setattr = "setattr"
let p_read = "read"
let p_write = "write"
let p_create = "create"
let p_remove = "remove"
let p_mkdir = "mkdir"
let p_rmdir = "rmdir"
let p_rename = "rename"
let p_readdir = "readdir"
let p_open = "open"
let p_close = "close"
let p_callback = "callback"
let p_ping = "ping"
let p_reopen = "reopen"

let data_procs = [ p_read; p_write ]

let basic_procs =
  [
    p_lookup; p_getattr; p_setattr; p_read; p_write; p_create; p_remove;
    p_mkdir; p_rmdir; p_rename; p_readdir;
  ]

(* ---- client stubs ---- *)

type call = proc:string -> ?bulk:int -> bytes -> bytes

let check d =
  match dec_status d with Ok () -> () | Error e -> raise (Localfs.Error e)

let enc () = Xdr.Enc.create ()

let dirop (call : call) ~proc ~dir name =
  let e = enc () in
  enc_fh e dir;
  Xdr.Enc.string e name;
  let d = Xdr.Dec.of_bytes (call ~proc (Xdr.Enc.to_bytes e)) in
  check d;
  let fh = dec_fh d in
  let attrs = dec_attrs d in
  (fh, attrs)

let lookup call ~dir name = dirop call ~proc:p_lookup ~dir name
let create call ~dir name = dirop call ~proc:p_create ~dir name
let mkdir call ~dir name = dirop call ~proc:p_mkdir ~dir name

let getattr (call : call) fh =
  let e = enc () in
  enc_fh e fh;
  let d = Xdr.Dec.of_bytes (call ~proc:p_getattr (Xdr.Enc.to_bytes e)) in
  check d;
  dec_attrs d

let setattr (call : call) fh ~size =
  let e = enc () in
  enc_fh e fh;
  Xdr.Enc.uint32 e size;
  let d = Xdr.Dec.of_bytes (call ~proc:p_setattr (Xdr.Enc.to_bytes e)) in
  check d;
  dec_attrs d

let read (call : call) fh ~index =
  let e = enc () in
  enc_fh e fh;
  Xdr.Enc.uint32 e index;
  let d = Xdr.Dec.of_bytes (call ~proc:p_read (Xdr.Enc.to_bytes e)) in
  check d;
  let stamp = Xdr.Dec.uint32 d in
  let len = Xdr.Dec.uint32 d in
  (stamp, len)

let write (call : call) fh ~index ~stamp ~len =
  let e = enc () in
  enc_fh e fh;
  Xdr.Enc.uint32 e index;
  Xdr.Enc.uint32 e stamp;
  Xdr.Enc.uint32 e len;
  (* the data itself rides as bulk payload *)
  let d = Xdr.Dec.of_bytes (call ~proc:p_write ~bulk:len (Xdr.Enc.to_bytes e)) in
  check d;
  dec_attrs d

let name_op (call : call) ~proc ~dir name =
  let e = enc () in
  enc_fh e dir;
  Xdr.Enc.string e name;
  let d = Xdr.Dec.of_bytes (call ~proc (Xdr.Enc.to_bytes e)) in
  check d

let remove call ~dir name = name_op call ~proc:p_remove ~dir name
let rmdir call ~dir name = name_op call ~proc:p_rmdir ~dir name

let rename (call : call) ~fromdir fname ~todir tname =
  let e = enc () in
  enc_fh e fromdir;
  Xdr.Enc.string e fname;
  enc_fh e todir;
  Xdr.Enc.string e tname;
  let d = Xdr.Dec.of_bytes (call ~proc:p_rename (Xdr.Enc.to_bytes e)) in
  check d

let readdir (call : call) fh =
  let e = enc () in
  enc_fh e fh;
  let d = Xdr.Dec.of_bytes (call ~proc:p_readdir (Xdr.Enc.to_bytes e)) in
  check d;
  Xdr.Dec.array d Xdr.Dec.string

type open_reply = {
  cache_enabled : bool;
  version : int;
  prev_version : int;
  attrs : Localfs.attrs;
}

let snfs_open (call : call) fh ~write_mode =
  let e = enc () in
  enc_fh e fh;
  Xdr.Enc.bool e write_mode;
  let d = Xdr.Dec.of_bytes (call ~proc:p_open (Xdr.Enc.to_bytes e)) in
  check d;
  let cache_enabled = Xdr.Dec.bool d in
  let version = Xdr.Dec.uint32 d in
  let prev_version = Xdr.Dec.uint32 d in
  let attrs = dec_attrs d in
  { cache_enabled; version; prev_version; attrs }

let snfs_close (call : call) fh ~write_mode =
  let e = enc () in
  enc_fh e fh;
  Xdr.Enc.bool e write_mode;
  let d = Xdr.Dec.of_bytes (call ~proc:p_close (Xdr.Enc.to_bytes e)) in
  check d

(* [cb_ctx] is the causal context of the client operation that induced
   this callback (0 = none): the receiving client tags the work it does
   on the callback's behalf with the inducing operation, closing the
   cross-host causal chain. *)
type callback_args = {
  cb_fh : fh;
  cb_writeback : bool;
  cb_invalidate : bool;
  cb_ctx : int;
}

let enc_callback e { cb_fh; cb_writeback; cb_invalidate; cb_ctx } =
  enc_fh e cb_fh;
  Xdr.Enc.bool e cb_writeback;
  Xdr.Enc.bool e cb_invalidate;
  Xdr.Enc.ctx e cb_ctx

let dec_callback d =
  let cb_fh = dec_fh d in
  let cb_writeback = Xdr.Dec.bool d in
  let cb_invalidate = Xdr.Dec.bool d in
  let cb_ctx = Xdr.Dec.ctx d in
  { cb_fh; cb_writeback; cb_invalidate; cb_ctx }

(* ---- server core ---- *)

(* Hooks receive [ctx], the causal context of the triggering client
   operation, so consistency actions they induce (RFS invalidations)
   can be attributed to it. *)
type server_core = {
  fsid : int;
  fs : Localfs.t;
  on_read : (ino:int -> caller:int -> ctx:Obs.Causal.t -> unit) option;
  on_write : (ino:int -> caller:int -> ctx:Obs.Causal.t -> unit) option;
  on_remove : (ino:int -> ctx:Obs.Causal.t -> unit) option;
}

let make_server_core ~fsid fs ?on_read ?on_write ?on_remove () =
  { fsid; fs; on_read; on_write; on_remove }

let core_fsid c = c.fsid
let core_fs c = c.fs

let root_fh c = { fsid = c.fsid; ino = Localfs.root c.fs; gen = 1 }

let reply_of e = { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }

let ok_enc () =
  let e = Xdr.Enc.create () in
  enc_status e (Ok ());
  e

let error_reply err =
  let e = Xdr.Enc.create () in
  enc_status e (Error err);
  reply_of e

let check_fh c (fh : fh) =
  if fh.fsid <> c.fsid then raise (Localfs.Error Localfs.Stale)

let with_errors f = try f () with Localfs.Error err -> error_reply err

let fh_attrs_reply ~ctx c ino =
  let attrs = Localfs.getattr ~ctx c.fs ino in
  let e = ok_enc () in
  enc_fh e { fsid = c.fsid; ino; gen = attrs.Localfs.gen };
  enc_attrs e attrs;
  reply_of e

let handle_basic c ~caller ~ctx ~proc d =
  let fs = c.fs in
  let handler () =
    with_errors @@ fun () ->
    if proc = p_lookup then begin
      let dir = dec_fh d in
      check_fh c dir;
      let name = Xdr.Dec.string d in
      fh_attrs_reply ~ctx c (Localfs.lookup ~ctx fs ~dir:dir.ino name)
    end
    else if proc = p_getattr then begin
      let fh = dec_fh d in
      check_fh c fh;
      (* snfs-lint: allow yield-race — fs is set at server creation *)
      let attrs = Localfs.getattr ~ctx fs fh.ino in
      let e = ok_enc () in
      enc_attrs e attrs;
      reply_of e
    end
    else if proc = p_setattr then begin
      let fh = dec_fh d in
      check_fh c fh;
      let size = Xdr.Dec.uint32 d in
      Localfs.setattr ~ctx fs fh.ino ~size ();
      let attrs = Localfs.getattr ~ctx fs fh.ino in
      let e = ok_enc () in
      enc_attrs e attrs;
      reply_of e
    end
    else if proc = p_read then begin
      let fh = dec_fh d in
      check_fh c fh;
      let index = Xdr.Dec.uint32 d in
      let stamp, len = Localfs.read_block ~ctx fs fh.ino ~index in
      (match c.on_read with
      | Some f -> f ~ino:fh.ino ~caller ~ctx
      | None -> ());
      let e = ok_enc () in
      Xdr.Enc.uint32 e stamp;
      Xdr.Enc.uint32 e len;
      (* the data block rides back as bulk payload *)
      { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = len }
    end
    else if proc = p_write then begin
      let fh = dec_fh d in
      check_fh c fh;
      let index = Xdr.Dec.uint32 d in
      let stamp = Xdr.Dec.uint32 d in
      let len = Xdr.Dec.uint32 d in
      (* stable storage before replying *)
      Localfs.write_block ~ctx fs fh.ino ~index ~stamp ~len `Sync;
      (match c.on_write with
      | Some f -> f ~ino:fh.ino ~caller ~ctx
      | None -> ());
      let attrs = Localfs.getattr ~ctx fs fh.ino in
      let e = ok_enc () in
      enc_attrs e attrs;
      reply_of e
    end
    else if proc = p_create then begin
      let dir = dec_fh d in
      check_fh c dir;
      let name = Xdr.Dec.string d in
      fh_attrs_reply ~ctx c (Localfs.create_file ~ctx fs ~dir:dir.ino name)
    end
    else if proc = p_mkdir then begin
      let dir = dec_fh d in
      check_fh c dir;
      let name = Xdr.Dec.string d in
      fh_attrs_reply ~ctx c (Localfs.mkdir ~ctx fs ~dir:dir.ino name)
    end
    else if proc = p_remove then begin
      let dir = dec_fh d in
      check_fh c dir;
      let name = Xdr.Dec.string d in
      let ino = Localfs.lookup ~ctx fs ~dir:dir.ino name in
      Localfs.remove ~ctx fs ~dir:dir.ino name;
      (match c.on_remove with Some f -> f ~ino ~ctx | None -> ());
      reply_of (ok_enc ())
    end
    else if proc = p_rmdir then begin
      let dir = dec_fh d in
      check_fh c dir;
      let name = Xdr.Dec.string d in
      Localfs.rmdir ~ctx fs ~dir:dir.ino name;
      reply_of (ok_enc ())
    end
    else if proc = p_rename then begin
      let fromdir = dec_fh d in
      check_fh c fromdir;
      let fname = Xdr.Dec.string d in
      let todir = dec_fh d in
      check_fh c todir;
      let tname = Xdr.Dec.string d in
      Localfs.rename ~ctx fs ~fromdir:fromdir.ino fname ~todir:todir.ino tname;
      reply_of (ok_enc ())
    end
    else if proc = p_readdir then begin
      let fh = dec_fh d in
      check_fh c fh;
      let names = Localfs.readdir ~ctx fs ~dir:fh.ino in
      let e = ok_enc () in
      Xdr.Enc.array e (Xdr.Enc.string e) names;
      reply_of e
    end
    else assert false
  in
  (* membership test as a literal-string match (a comparison tree),
     not a [List.mem] scan with polymorphic equality — this runs once
     per served RPC. The literals mirror [basic_procs]. *)
  match proc with
  | "lookup" | "getattr" | "setattr" | "read" | "write" | "create" | "remove"
  | "mkdir" | "rmdir" | "rename" | "readdir" ->
      Some (handler ())
  | _ -> None
