type t = (string, int) Hashtbl.t

let create () = Hashtbl.create 32

let incr t ?(n = 1) name =
  let cur = match Hashtbl.find_opt t name with Some v -> v | None -> 0 in
  Hashtbl.replace t name (cur + n)

let get t name = match Hashtbl.find_opt t name with Some v -> v | None -> 0

let total t = Hashtbl.fold (fun _ v acc -> acc + v) t 0

let total_of t names = List.fold_left (fun acc n -> acc + get t n) 0 names

let to_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = Hashtbl.reset t

let snapshot t = Hashtbl.copy t

(* A counter [reset] between the two snapshots would otherwise surface
   as a negative delta and silently poison interval arithmetic. *)
let diff later earlier =
  let out = create () in
  Hashtbl.iter
    (fun name v ->
      let d = v - get earlier name in
      if d > 0 then Hashtbl.replace out name d)
    later;
  out
