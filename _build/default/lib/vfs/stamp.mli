(** Globally unique content stamps.

    A stamp identifies one logical write: a block whose content stamp
    equals the stamp of the most recent write to it is up to date. The
    consistency oracle in the tests compares stamps instead of bytes. *)

(** A fresh, never-before-returned stamp. *)
val fresh : unit -> int
