(** A served resource (CPU, disk arm, ...) with utilization accounting.

    Behaves like a FIFO semaphore of [capacity] units, but additionally
    tracks the total virtual time during which at least one unit was
    held ("busy time"), which is what server-utilization figures
    plot. *)

type t

val create : Engine.t -> ?capacity:int -> string -> t

val name : t -> string
(* snfs-lint: allow interface-drift — resource introspection *)
val capacity : t -> int

(* snfs-lint: allow interface-drift — low-level pair underlying use, for non-scoped holds *)
val acquire : t -> unit
(* snfs-lint: allow interface-drift — low-level pair underlying use, for non-scoped holds *)
val release : t -> unit

(** [use t dur] acquires a unit, holds it for [dur] seconds of virtual
    time, and releases it. This is the normal way to charge CPU or
    device time. *)
val use : t -> float -> unit

(** [reserve t dur] books [dur] seconds on a capacity-1 resource
    without suspending the caller, and returns the virtual time at
    which the reservation ends (reservations are served FIFO, so it
    starts when the previous one ends). Equivalent to a dedicated
    process calling {!use}, minus the process: the fast path for
    fire-and-forget serialized devices such as the network medium.
    Do not mix with {!acquire}/{!use} on the same resource — the two
    disciplines don't see each other's occupancy. Raises
    [Invalid_argument] if the capacity is not 1 or [dur] is
    negative. *)
val reserve : t -> float -> float

(** Cumulative busy time (any unit held) up to the current instant. *)
val busy_time : t -> float

(** Units currently held. *)
(* snfs-lint: allow interface-drift — resource introspection *)
val in_use : t -> int

(** Processes blocked waiting for a unit. *)
(* snfs-lint: allow interface-drift — resource introspection *)
val queue_length : t -> int
