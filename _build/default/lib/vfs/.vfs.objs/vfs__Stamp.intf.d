lib/vfs/stamp.mli:
