(* Exhaustive walk of the paper's Table 4-1.

   For every named state we have a canonical construction sequence;
   for every applicable event (open read / open write, by the same or
   another client; close read / close write) we assert the resulting
   state and the prescribed callbacks. This is the full transition
   matrix of Section 4.3.4, including the rows the OCR of the paper
   mangled, reconstructed from the protocol description in Sections
   2.2 and 3. *)

open Spritely

let st = Alcotest.testable State_table.pp_state ( = )

let file = 7

(* canonical clients *)
let c1 = 1

and c2 = 2

and c3 = 3

let open_ t client mode = State_table.open_file t ~file ~client ~mode

let close_ t client mode = State_table.close_file t ~file ~client ~mode

(* construction sequences for each named state; returns the table *)
let build = function
  | State_table.Closed ->
      (* an entry exists but nothing is open: create then fully retire.
         note_clean turns CLOSED_DIRTY into CLOSED (entry dropped) *)
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Read);
      close_ t c1 State_table.Read;
      t
  | State_table.Closed_dirty ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Write);
      close_ t c1 State_table.Write;
      t
  | State_table.One_reader ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Read);
      t
  | State_table.One_rdr_dirty ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Write);
      close_ t c1 State_table.Write;
      ignore (open_ t c1 State_table.Read);
      t
  | State_table.Mult_readers ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Read);
      ignore (open_ t c2 State_table.Read);
      t
  | State_table.One_writer ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Write);
      t
  | State_table.Write_shared ->
      let t = State_table.create () in
      ignore (open_ t c1 State_table.Write);
      ignore (open_ t c2 State_table.Write);
      t

let check_build state () =
  let t = build state in
  Alcotest.check st "constructed state" state (State_table.state t ~file)

(* one matrix entry: from [start], apply [event], expect [final] and
   the given callback summary (target, writeback, invalidate) list *)
let transition ~start ~event ~final ~callbacks () =
  let t = build start in
  let result =
    match event with
    | `Open (client, mode) -> Some (open_ t client mode)
    | `Close (client, mode) ->
        close_ t client mode;
        None
  in
  Alcotest.check st
    (Printf.sprintf "%s -> %s" (State_table.state_to_string start)
       (State_table.state_to_string final))
    final
    (State_table.state t ~file);
  match result with
  | None -> Alcotest.(check (list (triple int bool bool))) "no callbacks" [] callbacks
  | Some r ->
      let got =
        List.map
          (fun cb ->
            ( cb.State_table.target,
              cb.State_table.writeback,
              cb.State_table.invalidate ))
          r.State_table.callbacks
        |> List.sort compare
      in
      Alcotest.(check (list (triple int bool bool)))
        "prescribed callbacks" (List.sort compare callbacks) got

let case name fn = Alcotest.test_case name `Quick fn

let open_rows =
  [
    (* ---- from CLOSED ---- *)
    case "CLOSED + open read -> ONE_READER"
      (transition ~start:State_table.Closed
         ~event:(`Open (c1, State_table.Read))
         ~final:State_table.One_reader ~callbacks:[]);
    case "CLOSED + open write -> ONE_WRITER"
      (transition ~start:State_table.Closed
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
    (* ---- from CLOSED_DIRTY (last writer c1) ---- *)
    case "CLOSED_DIRTY + reopen read by last writer -> ONE_RDR_DIRTY"
      (transition ~start:State_table.Closed_dirty
         ~event:(`Open (c1, State_table.Read))
         ~final:State_table.One_rdr_dirty ~callbacks:[]);
    case "CLOSED_DIRTY + reopen write by last writer -> ONE_WRITER"
      (transition ~start:State_table.Closed_dirty
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
    case "CLOSED_DIRTY + open read by other -> ONE_READER + writeback cb"
      (transition ~start:State_table.Closed_dirty
         ~event:(`Open (c2, State_table.Read))
         ~final:State_table.One_reader
         ~callbacks:[ (c1, true, false) ]);
    case "CLOSED_DIRTY + open write by other -> ONE_WRITER + wb+inv cb"
      (transition ~start:State_table.Closed_dirty
         ~event:(`Open (c2, State_table.Write))
         ~final:State_table.One_writer
         ~callbacks:[ (c1, true, true) ]);
    (* ---- from ONE_READER (reader c1) ---- *)
    case "ONE_READER + open read by same -> ONE_READER"
      (transition ~start:State_table.One_reader
         ~event:(`Open (c1, State_table.Read))
         ~final:State_table.One_reader ~callbacks:[]);
    case "ONE_READER + open read by other -> MULT_READERS"
      (transition ~start:State_table.One_reader
         ~event:(`Open (c2, State_table.Read))
         ~final:State_table.Mult_readers ~callbacks:[]);
    case "ONE_READER + open write by same -> ONE_WRITER"
      (transition ~start:State_table.One_reader
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
    case "ONE_READER + open write by other -> WRITE_SHARED + inv cb"
      (transition ~start:State_table.One_reader
         ~event:(`Open (c2, State_table.Write))
         ~final:State_table.Write_shared
         ~callbacks:[ (c1, false, true) ]);
    (* ---- from ONE_RDR_DIRTY (reader c1 with dirty blocks) ---- *)
    case "ONE_RDR_DIRTY + open read by same -> ONE_RDR_DIRTY"
      (transition ~start:State_table.One_rdr_dirty
         ~event:(`Open (c1, State_table.Read))
         ~final:State_table.One_rdr_dirty ~callbacks:[]);
    case "ONE_RDR_DIRTY + open write by same -> ONE_WRITER"
      (transition ~start:State_table.One_rdr_dirty
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
    case "ONE_RDR_DIRTY + open read by other -> MULT_READERS + wb cb"
      (transition ~start:State_table.One_rdr_dirty
         ~event:(`Open (c2, State_table.Read))
         ~final:State_table.Mult_readers
         ~callbacks:[ (c1, true, false) ]);
    case "ONE_RDR_DIRTY + open write by other -> WRITE_SHARED + wb+inv cb"
      (transition ~start:State_table.One_rdr_dirty
         ~event:(`Open (c2, State_table.Write))
         ~final:State_table.Write_shared
         ~callbacks:[ (c1, true, true) ]);
    (* ---- from MULT_READERS (readers c1, c2) ---- *)
    case "MULT_READERS + open read by third -> MULT_READERS"
      (transition ~start:State_table.Mult_readers
         ~event:(`Open (c3, State_table.Read))
         ~final:State_table.Mult_readers ~callbacks:[]);
    case "MULT_READERS + open write by reader -> WRITE_SHARED + inv cb to other"
      (transition ~start:State_table.Mult_readers
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.Write_shared
         ~callbacks:[ (c2, false, true) ]);
    case "MULT_READERS + open write by third -> WRITE_SHARED + inv cbs to both"
      (transition ~start:State_table.Mult_readers
         ~event:(`Open (c3, State_table.Write))
         ~final:State_table.Write_shared
         ~callbacks:[ (c1, false, true); (c2, false, true) ]);
    (* ---- from ONE_WRITER (writer c1) ---- *)
    case "ONE_WRITER + open read by same -> ONE_WRITER"
      (transition ~start:State_table.One_writer
         ~event:(`Open (c1, State_table.Read))
         ~final:State_table.One_writer ~callbacks:[]);
    case "ONE_WRITER + open write by same -> ONE_WRITER"
      (transition ~start:State_table.One_writer
         ~event:(`Open (c1, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
    case "ONE_WRITER + open read by other -> WRITE_SHARED + wb+inv cb"
      (transition ~start:State_table.One_writer
         ~event:(`Open (c2, State_table.Read))
         ~final:State_table.Write_shared
         ~callbacks:[ (c1, true, true) ]);
    case "ONE_WRITER + open write by other -> WRITE_SHARED + wb+inv cb"
      (transition ~start:State_table.One_writer
         ~event:(`Open (c2, State_table.Write))
         ~final:State_table.Write_shared
         ~callbacks:[ (c1, true, true) ]);
    (* ---- from WRITE_SHARED (writers c1, c2; nobody caches) ---- *)
    case "WRITE_SHARED + open read by third -> WRITE_SHARED"
      (transition ~start:State_table.Write_shared
         ~event:(`Open (c3, State_table.Read))
         ~final:State_table.Write_shared ~callbacks:[]);
    case "WRITE_SHARED + open write by third -> WRITE_SHARED"
      (transition ~start:State_table.Write_shared
         ~event:(`Open (c3, State_table.Write))
         ~final:State_table.Write_shared ~callbacks:[]);
  ]

let close_rows =
  [
    case "ONE_READER + final close -> CLOSED"
      (transition ~start:State_table.One_reader
         ~event:(`Close (c1, State_table.Read))
         ~final:State_table.Closed ~callbacks:[]);
    case "ONE_RDR_DIRTY + final close -> CLOSED_DIRTY (writer remembered)"
      (transition ~start:State_table.One_rdr_dirty
         ~event:(`Close (c1, State_table.Read))
         ~final:State_table.Closed_dirty ~callbacks:[]);
    case "MULT_READERS + one closes -> ONE_READER"
      (transition ~start:State_table.Mult_readers
         ~event:(`Close (c2, State_table.Read))
         ~final:State_table.One_reader ~callbacks:[]);
    case "ONE_WRITER + final close -> CLOSED_DIRTY"
      (transition ~start:State_table.One_writer
         ~event:(`Close (c1, State_table.Write))
         ~final:State_table.Closed_dirty ~callbacks:[]);
    case "WRITE_SHARED + writer closes -> ONE_WRITER (no caching resumed)"
      (transition ~start:State_table.Write_shared
         ~event:(`Close (c2, State_table.Write))
         ~final:State_table.One_writer ~callbacks:[]);
  ]

(* the "close write while still reading" row needs a richer start *)
let test_close_write_still_reading () =
  let t = State_table.create () in
  ignore (open_ t c1 State_table.Read);
  ignore (open_ t c1 State_table.Write);
  close_ t c1 State_table.Write;
  Alcotest.check st "-> ONE_RDR_DIRTY" State_table.One_rdr_dirty
    (State_table.state t ~file);
  Alcotest.(check (option int)) "recorded as last writer" (Some c1)
    (State_table.last_writer t ~file)

(* WRITE_SHARED un-shares but caching stays off until reopen *)
let test_write_shared_never_reenables_caching_in_place () =
  let t = build State_table.Write_shared in
  close_ t c2 State_table.Write;
  Alcotest.check st "ONE_WRITER" State_table.One_writer
    (State_table.state t ~file);
  Alcotest.(check bool) "remaining writer still may not cache" false
    (State_table.can_cache t ~file ~client:c1);
  (* but closing and reopening regains cachability *)
  close_ t c1 State_table.Write;
  let r = open_ t c1 State_table.Write in
  Alcotest.(check bool) "fresh open may cache" true
    r.State_table.cache_enabled

(* version numbers along every write-open path *)
let test_versions_bump_exactly_on_write_opens () =
  let t = State_table.create () in
  let v0 = (open_ t c1 State_table.Read).State_table.version in
  let v1 = (open_ t c2 State_table.Read).State_table.version in
  Alcotest.(check int) "read opens don't bump" v0 v1;
  let v2 = (open_ t c3 State_table.Write).State_table.version in
  Alcotest.(check bool) "write open bumps" true (v2 > v1);
  let v3 = (open_ t c3 State_table.Write).State_table.version in
  Alcotest.(check bool) "even repeat write opens bump" true (v3 > v2)

let () =
  Alcotest.run "table_4_1"
    [
      ( "state constructions",
        List.map
          (fun s ->
            Alcotest.test_case (State_table.state_to_string s) `Quick
              (check_build s))
          [
            State_table.Closed;
            State_table.Closed_dirty;
            State_table.One_reader;
            State_table.One_rdr_dirty;
            State_table.Mult_readers;
            State_table.One_writer;
            State_table.Write_shared;
          ] );
      ("open transitions", open_rows);
      ("close transitions", close_rows);
      ( "special rows",
        [
          Alcotest.test_case "close write, still reading" `Quick
            test_close_write_still_reading;
          Alcotest.test_case "write-shared caching not re-enabled" `Quick
            test_write_shared_never_reenables_caching_in_place;
          Alcotest.test_case "version bump discipline" `Quick
            test_versions_bump_exactly_on_write_opens;
        ] );
    ]
