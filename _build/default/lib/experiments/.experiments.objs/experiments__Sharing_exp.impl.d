lib/experiments/sharing_exp.ml: Array Diskm Driver Int64 Kentfs List Localfs Netsim Nfs Printf Report Rfs Sim Snfs Stats Sys Vfs Workload
