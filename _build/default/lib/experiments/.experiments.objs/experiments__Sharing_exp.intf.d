lib/experiments/sharing_exp.mli: Localfs Netsim Sim Vfs
