(** Binary min-heap of timestamped events.

    Events are ordered by time; ties are broken by insertion sequence
    number so that the simulation is fully deterministic. *)

type t

val create : unit -> t

(** [push t ~time ~seq fn] inserts event [fn] to fire at [time]. *)
val push : t -> time:float -> seq:int -> (unit -> unit) -> unit

(** Earliest event, by (time, seq). Raises [Not_found] if empty. *)
val pop : t -> float * int * (unit -> unit)

(** Time of the earliest event. Raises [Not_found] if empty. Does not
    allocate an option; the caller pays one float box at most. *)
val min_time : t -> float

(** Sequence number of the earliest event. Raises [Not_found] if
    empty. With {!min_time} this exposes the full ordering key, so two
    queues sharing one sequence counter can be merged by comparing
    tops (the engine's main/timer split relies on this). *)
val min_seq : t -> int

(** [precedes a b] is true when [a]'s earliest event orders before
    [b]'s, by the full (time, seq) key. Both queues must be
    non-empty. The comparison lives here so the dispatch loop never
    moves a raw timestamp across the module boundary (a float return
    is fine, but two per event plus the seq reads added up). *)
val precedes : t -> t -> bool

(** The do-nothing closure used to fill freed queue slots, and the
    sentinel {!pop_until} returns when it has nothing to dispatch.
    Compare with [==]. *)
val nop : unit -> unit

(** [pop_until t limit cell] pops the earliest event if its time is
    [<= limit], stores that time in [cell.(0)] (unboxed — meant for
    the engine's clock cell) and returns its closure. Returns {!nop},
    without popping, if the queue is empty or the top is later than
    [limit]. The engine never enqueues {!nop} itself, so a [==] test
    against it is unambiguous. *)
val pop_until : t -> float -> float array -> unit -> unit

(** Remove and return the earliest event's closure (by (time, seq)).
    Raises [Not_found] if empty. The zero-allocation half of the
    engine's dispatch pair: read {!min_time} first if the timestamp is
    needed. *)
val pop_fn : t -> unit -> unit

val is_empty : t -> bool
val length : t -> int
