(* Tests for the workload generators: the synthetic source tree, the
   Andrew benchmark phases, the external sort, and the reread
   microbenchmark — all over the local file system, where the expected
   I/O is easy to reason about. *)

let run_sim f =
  let e = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn e ~name:"test-main" (fun () ->
      result := Some (f e);
      Sim.Engine.stop e);
  Sim.Engine.run e;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation main process did not complete"

let make_ctx e =
  let net = Netsim.Net.create e () in
  let host = Netsim.Net.Host.create net "client" in
  let disk = Diskm.Disk.create e "disk" in
  let lfs = Localfs.create e ~name:"fs" ~disk ~cache_blocks:4096 () in
  let mounts = Vfs.Mount.create () in
  Vfs.Mount.mount mounts ~at:"/" (Vfs.Local_mount.make lfs);
  let ctx = Workload.App.make ~mounts ~host in
  List.iter (fun p -> Vfs.Fileio.mkdir mounts p) [ "/data"; "/tmp"; "/local" ];
  ctx

(* ---- file tree ---- *)

let test_plan_deterministic () =
  let a = Workload.File_tree.plan Workload.File_tree.default ~root:"/data/src" in
  let b = Workload.File_tree.plan Workload.File_tree.default ~root:"/data/src" in
  Alcotest.(check bool) "same layout" true
    (a.Workload.File_tree.files = b.Workload.File_tree.files)

let test_plan_shape () =
  let t = Workload.File_tree.plan Workload.File_tree.default ~root:"/r" in
  (* the default approximates the paper's input: ~70 files, ~200 kB *)
  let files = Workload.File_tree.file_count t in
  let bytes = Workload.File_tree.total_bytes t in
  Alcotest.(check bool)
    (Printf.sprintf "file count %d in [60,90]" files)
    true
    (files >= 60 && files <= 90);
  Alcotest.(check bool)
    (Printf.sprintf "total bytes %d in [150k,300k]" bytes)
    true
    (bytes >= 150_000 && bytes <= 300_000);
  Alcotest.(check int) "17-ish compiled sources" 16
    (List.length t.Workload.File_tree.c_files);
  Alcotest.(check int) "12 headers" 12
    (List.length t.Workload.File_tree.header_files);
  (* every c file is in the files list *)
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (name ^ " listed") true
        (List.mem_assoc name t.Workload.File_tree.files))
    t.Workload.File_tree.c_files

let test_populate () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let t = Workload.File_tree.plan Workload.File_tree.default ~root:"/data/src" in
      Workload.File_tree.populate ctx t;
      List.iter
        (fun (name, bytes) ->
          let attrs =
            Vfs.Fileio.stat ctx.Workload.App.mounts ("/data/src/" ^ name)
          in
          Alcotest.(check int) (name ^ " size") bytes attrs.Localfs.size)
        t.Workload.File_tree.files)

let test_at_root () =
  let t = Workload.File_tree.plan Workload.File_tree.default ~root:"/a" in
  let t' = Workload.File_tree.at_root t ~root:"/b" in
  Alcotest.(check string) "root moved" "/b" t'.Workload.File_tree.root;
  Alcotest.(check bool) "layout unchanged" true
    (t.Workload.File_tree.files = t'.Workload.File_tree.files)

(* ---- andrew ---- *)

let small_andrew =
  {
    Workload.Andrew.default_config with
    tree =
      {
        Workload.File_tree.default with
        dirs = 2;
        files_per_dir = 4;
        c_files_per_dir = 2;
        headers = 4;
      };
  }

let test_andrew_runs () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let tree = Workload.Andrew.setup ctx small_andrew in
      let p = Workload.Andrew.run ctx small_andrew tree in
      (* all phases take positive time and the run is self-consistent *)
      Alcotest.(check bool) "makedir > 0" true (p.Workload.Andrew.makedir > 0.0);
      Alcotest.(check bool) "copy > 0" true (p.Workload.Andrew.copy > 0.0);
      Alcotest.(check bool) "scandir > 0" true (p.Workload.Andrew.scandir > 0.0);
      Alcotest.(check bool) "readall > 0" true (p.Workload.Andrew.readall > 0.0);
      Alcotest.(check bool) "make > 0" true (p.Workload.Andrew.make > 0.0);
      Alcotest.(check (float 1e-6)) "total = sum"
        (p.Workload.Andrew.makedir +. p.Workload.Andrew.copy
        +. p.Workload.Andrew.scandir +. p.Workload.Andrew.readall
        +. p.Workload.Andrew.make)
        (Workload.Andrew.total p);
      (* the copy phase produced the full target tree *)
      List.iter
        (fun (name, bytes) ->
          let attrs =
            Vfs.Fileio.stat ctx.Workload.App.mounts ("/data/dst/" ^ name)
          in
          Alcotest.(check int) ("copied " ^ name) bytes attrs.Localfs.size)
        tree.Workload.File_tree.files;
      (* the make phase produced objects for every .c and the program *)
      List.iter
        (fun (name, _) ->
          let obj = "/data/dst/" ^ Filename.remove_extension name ^ ".o" in
          Alcotest.(check bool) (obj ^ " exists") true
            (Vfs.Fileio.exists ctx.Workload.App.mounts obj))
        tree.Workload.File_tree.c_files;
      Alcotest.(check bool) "a.out exists" true
        (Vfs.Fileio.exists ctx.Workload.App.mounts "/data/dst/a.out");
      (* compiler temporaries were deleted *)
      let leftovers =
        Vfs.Fileio.readdir ctx.Workload.App.mounts "/tmp"
        |> List.filter (fun n -> Filename.check_suffix n ".tmp")
      in
      Alcotest.(check (list string)) "no temp leftovers" [] leftovers)

(* ---- sort ---- *)

let sort_config input_kb =
  {
    Workload.Sort_workload.default_config with
    input_bytes = input_kb * 1024;
    input_path = "/local/in";
    output_path = "/local/out";
    tmp_dir = "/tmp";
  }

let test_sort_output_and_cleanup () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let config = sort_config 512 in
      Workload.Sort_workload.setup ctx config;
      let r = Workload.Sort_workload.run ctx config in
      Alcotest.(check bool) "elapsed > 0" true
        (r.Workload.Sort_workload.elapsed > 0.0);
      (* output has the input's size *)
      let out = Vfs.Fileio.stat ctx.Workload.App.mounts "/local/out" in
      Alcotest.(check int) "output size" (512 * 1024) out.Localfs.size;
      (* every temporary was deleted *)
      let leftovers = Vfs.Fileio.readdir ctx.Workload.App.mounts "/tmp" in
      Alcotest.(check (list string)) "no temp leftovers" [] leftovers)

let test_sort_temp_grows_superlinearly () =
  (* the paper's Table 5-3: temporary traffic grows faster than the
     input because of multi-pass merging *)
  run_sim (fun e ->
      let ctx = make_ctx e in
      let small = sort_config 281 in
      Workload.Sort_workload.setup ctx small;
      let r_small = Workload.Sort_workload.run ctx small in
      let big = sort_config 2816 in
      Workload.Sort_workload.setup ctx big;
      let r_big = Workload.Sort_workload.run ctx big in
      let ratio_small =
        float_of_int r_small.Workload.Sort_workload.temp_bytes_written
        /. float_of_int (281 * 1024)
      in
      let ratio_big =
        float_of_int r_big.Workload.Sort_workload.temp_bytes_written
        /. float_of_int (2816 * 1024)
      in
      Alcotest.(check bool)
        (Printf.sprintf "temp ratio grows (%.2f -> %.2f)" ratio_small ratio_big)
        true (ratio_big > ratio_small))

(* ---- reread ---- *)

let test_reread_local () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let r =
        Workload.Reread.run ctx
          { Workload.Reread.dir = "/data"; bytes = 256 * 1024 }
      in
      Alcotest.(check bool) "write cost positive" true
        (r.Workload.Reread.write_close >= 0.0);
      (* on a local fs with a big cache, rereading is nearly free *)
      Alcotest.(check bool) "reread cheap" true
        (r.Workload.Reread.reread_same <= r.Workload.Reread.write_close +. 0.1))

(* ---- trace ---- *)

let test_trace_generation_deterministic () =
  let a = Workload.Trace.generate Workload.Trace.default_config in
  let b = Workload.Trace.generate Workload.Trace.default_config in
  Alcotest.(check bool) "same ops" true (a = b);
  Alcotest.(check int) "requested length" 400 (List.length a)

let test_trace_mix () =
  let ops = Workload.Trace.generate Workload.Trace.default_config in
  let temps =
    List.length
      (List.filter (function Workload.Trace.Temp _ -> true | _ -> false) ops)
  in
  let reads =
    List.length
      (List.filter
         (function Workload.Trace.Read_whole _ -> true | _ -> false)
         ops)
  in
  let frac_temps = float_of_int temps /. 400.0 in
  Alcotest.(check bool)
    (Printf.sprintf "temp fraction %.2f near 0.15" frac_temps)
    true
    (frac_temps > 0.08 && frac_temps < 0.25);
  Alcotest.(check bool) "reads dominate" true (reads > 150)

let test_trace_replay () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let config =
        { Workload.Trace.default_config with operations = 60; mean_think = 0.01 }
      in
      Workload.Trace.setup ctx config;
      let ops = Workload.Trace.generate config in
      let r = Workload.Trace.replay ctx config ops in
      Alcotest.(check bool) "elapsed > 0" true (r.Workload.Trace.elapsed > 0.0);
      let total =
        Stats.Histogram.count r.Workload.Trace.read_lat
        + Stats.Histogram.count r.Workload.Trace.write_lat
        + Stats.Histogram.count r.Workload.Trace.stat_lat
        + Stats.Histogram.count r.Workload.Trace.temp_lat
      in
      Alcotest.(check int) "every op recorded" 60 total;
      (* all temporaries were deleted *)
      let leftovers =
        Vfs.Fileio.readdir ctx.Workload.App.mounts config.working_dir
        |> List.filter (fun n -> String.length n >= 3 && String.sub n 0 3 = "tmp")
      in
      Alcotest.(check (list string)) "no temp leftovers" [] leftovers)

(* ---- app ---- *)

let test_think_occupies_cpu () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let t0 = Sim.Engine.now e in
      Workload.App.think ctx 2.5;
      Alcotest.(check (float 1e-9)) "time advanced" 2.5 (Sim.Engine.now e -. t0);
      let busy = Sim.Resource.busy_time (Netsim.Net.Host.cpu ctx.Workload.App.host) in
      Alcotest.(check (float 1e-9)) "cpu charged" 2.5 busy)

let test_timed () =
  run_sim (fun e ->
      let ctx = make_ctx e in
      let elapsed, v =
        Workload.App.timed ctx (fun () ->
            Sim.Engine.sleep e 1.25;
            42)
      in
      Alcotest.(check (float 1e-9)) "elapsed" 1.25 elapsed;
      Alcotest.(check int) "result" 42 v)

let () =
  Alcotest.run "workload"
    [
      ( "file tree",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "shape" `Quick test_plan_shape;
          Alcotest.test_case "populate" `Quick test_populate;
          Alcotest.test_case "at_root" `Quick test_at_root;
        ] );
      ("andrew", [ Alcotest.test_case "full run" `Quick test_andrew_runs ]);
      ( "sort",
        [
          Alcotest.test_case "output and cleanup" `Quick
            test_sort_output_and_cleanup;
          Alcotest.test_case "temp superlinear" `Quick
            test_sort_temp_grows_superlinearly;
        ] );
      ("reread", [ Alcotest.test_case "local" `Quick test_reread_local ]);
      ( "trace",
        [
          Alcotest.test_case "deterministic" `Quick
            test_trace_generation_deterministic;
          Alcotest.test_case "mix" `Quick test_trace_mix;
          Alcotest.test_case "replay" `Quick test_trace_replay;
        ] );
      ( "app",
        [
          Alcotest.test_case "think" `Quick test_think_occupies_cpu;
          Alcotest.test_case "timed" `Quick test_timed;
        ] );
    ]
