(** Trace-driven workload, shaped by the BSD trace study the paper's
    argument leans on (Ousterhout et al. 1985, the paper's [10]):

    - most accesses are whole-file and sequential;
    - most files are small;
    - a surprising number of files live for only a few seconds and are
      never shared — the delayed-write opportunity;
    - a few files (headers, executables) are re-read over and over.

    {!generate} produces a deterministic operation list from a seed;
    {!replay} runs it through the system-call layer, recording
    per-operation-class latency histograms. *)

type config = {
  operations : int;
  working_dir : string;
  hot_files : int;  (** repeatedly re-read files (headers and the like) *)
  cold_files : int;  (** the long tail *)
  temp_lifetime : float;  (** seconds between a temp's birth and death *)
  temp_fraction : float;  (** fraction of ops that create a temporary *)
  read_fraction : float;  (** of the non-temp ops, how many are reads *)
  mean_think : float;  (** CPU-bound think time between operations *)
  small_bytes : int;
  large_bytes : int;
  seed : int64;
}

val default_config : config

type op =
  | Read_whole of string
  | Rewrite of string * int  (** truncate + write bytes *)
  | Stat of string
  | Temp of string * int  (** create, write, read back, delete *)

val generate : config -> op list

(** Latency histograms per operation class, plus total elapsed time. *)
type result = {
  read_lat : Stats.Histogram.t;
  write_lat : Stats.Histogram.t;
  stat_lat : Stats.Histogram.t;
  temp_lat : Stats.Histogram.t;
  elapsed : float;
}

(** [setup ctx config] creates the working directory and its files. *)
val setup : App.t -> config -> unit

val replay : App.t -> config -> op list -> result
