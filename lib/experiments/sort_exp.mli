(** The external-sort experiments: Tables 5-3 through 5-6. *)

type run_result = {
  label : string;
  elapsed : float;
  temp_bytes : int;
  counts : Stats.Counter.t;
  client_busy : float;  (** client CPU busy seconds during the run *)
  latencies : Obs.Latency.t;  (** per-procedure RPC round-trip times *)
}

(** Run the sort once: [input_kb] of input, temporaries on the given
    protocol's /usr_tmp. [update] is the /etc/update interval option.
    [trace] installs a tracer for the duration of the run; [metrics]
    a registry (sampled by {!Driver.run}). *)
val run_sort :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  protocol:Testbed.protocol ->
  ?update:float option ->
  input_kb:int ->
  label:string ->
  unit ->
  run_result

(** Table 5-3: elapsed time, three input sizes, local vs NFS vs SNFS. *)
val table_5_3 : unit -> string

(** Table 5-4: RPC calls for the 2816 kB sort, NFS vs SNFS. *)
val table_5_4 : unit -> string

(** Table 5-5: the same sorts with /etc/update disabled (infinite
    write-delay). *)
val table_5_5 : unit -> string

(** Table 5-6: read/write/other RPC counts for the 2816 kB sort with
    and without /etc/update, NFS vs SNFS. *)
val table_5_6 : unit -> string

(** Section 5.3's closing microbenchmark: write-close-reread. *)
val reread_check : unit -> string
