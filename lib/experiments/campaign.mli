(** Andrew-benchmark campaigns: independent configurations run
    sequentially or in parallel via {!Sweep}.

    One {!config} is a self-contained experiment — protocol stack, /tmp
    placement, and a (seeded) Andrew workload. Because every run builds
    its own engine and installs per-domain observability slots, a
    campaign's results are byte-identical whether run with [jobs:1] or
    fanned out over domains; [snfs_sim campaign --jobs N], the
    bench/perf campaign measurement, and the parallel-determinism tests
    all share this module. *)

type config = {
  name : string;
  protocol : Testbed.protocol;
  tmp : Testbed.tmp_placement;
  andrew : Workload.Andrew.config;
}

(** A config with the default Andrew workload re-seeded; protocol
    defaults to SNFS, /tmp to remote. *)
val seeded :
  ?tmp:Testbed.tmp_placement ->
  ?protocol:Testbed.protocol ->
  name:string ->
  seed:int64 ->
  unit ->
  config

(** The standard eight-config campaign: every protocol stack plus the
    design variants the paper compares (NFS without the
    invalidate-on-close bug, SNFS with delayed close, SNFS with local
    /tmp). *)
val default : unit -> config list

(** The result of one config's Andrew run. [report] is a deterministic
    rendering (phase times plus per-procedure RPC counts); with
    [~observe:true], [metrics_csv] and [trace_json] hold the full
    metrics time-series export and Chrome trace (empty strings
    otherwise). *)
type run = {
  name : string;
  phases : Workload.Andrew.phase_times;
  events : int;  (** simulation events executed by this run's engine *)
  report : string;
  metrics_csv : string;
  trace_json : string;
}

(** Run one config in a fresh simulation. [observe] (default false)
    installs a tracer and metrics registry for the run. [slot]
    (default 0) offsets the tracer's span-id range so traces from
    different campaign slots never share ids when merged. *)
val run_one : ?observe:bool -> ?slot:int -> config -> run

(** Run a whole campaign with {!Sweep.map}; results in input order.
    Each config's tracer allocates span ids from its own disjoint
    per-slot range. *)
val run : jobs:int -> ?observe:bool -> config list -> run list

(** Concatenated reports. *)
val table : run list -> string
