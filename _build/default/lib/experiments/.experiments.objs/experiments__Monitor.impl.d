lib/experiments/monitor.ml: List Netsim Nfs Sim Stats
