lib/snfs/hybrid_server.mli: Localfs Netsim Nfs Snfs_server Stats
