(** Interprocedural may-yield effect inference over the call graph.

    A fixpoint computing, for every toplevel binding in the tree,
    whether calling it can reach a cooperative blocking point. Seeds
    are the primitive blocking suffixes (a node *named* like one, e.g.
    [Sim.Engine.sleep], or a body applying one synchronously); the
    effect propagates up synchronous reference edges, so a wrapper in
    another library is inferred blocking and a pure function that
    merely shares a primitive's name is not. *)

val blocking_suffixes : string list list
(** application-head suffixes that relinquish the processor *)

val deferring_suffixes : string list list
(** heads whose lambda arguments run in a later task *)

val is_primitive : string list -> bool
(** does a raw head path suffix-match a primitive blocking point? *)

val may_yield : Callgraph.t -> (string, unit) Hashtbl.t
(** the summary table: node id present iff calling it may yield *)

val blocking_head :
  Callgraph.t ->
  (string, unit) Hashtbl.t ->
  file:string ->
  module_path:string list ->
  string list ->
  bool
(** judge one application head: resolved heads trust their inferred
    summary, unresolvable heads fall back to the primitive suffixes *)

val expr_blocks :
  Callgraph.t ->
  (string, unit) Hashtbl.t ->
  file:string ->
  module_path:string list ->
  Parsetree.expression ->
  bool
(** does the expression contain a blocking reference in synchronous
    position (deferred thunks excluded)? Used to judge lambda bodies
    handed to iterators. *)
