(* Run the Andrew benchmark under every protocol (local disk, NFS,
   "fixed" NFS without the invalidate-on-close bug, SNFS, SNFS with
   delayed close, and RFS) and compare per-phase times.

   Run with:  dune exec examples/andrew_compare.exe *)

let variants =
  [
    ("local disk", Experiments.Testbed.Local);
    ("NFS", Experiments.Testbed.Nfs_proto Nfs.Nfs_client.default_config);
    ( "NFS (bug fixed)",
      Experiments.Testbed.Nfs_proto
        { Nfs.Nfs_client.default_config with invalidate_on_close = false } );
    ("RFS", Experiments.Testbed.Rfs_proto Rfs.Rfs_client.default_config);
    ( "Kent blocks",
      Experiments.Testbed.Kent_proto Kentfs.Kent_client.default_config );
    ("SNFS", Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config);
    ( "SNFS (delayed close)",
      Experiments.Testbed.Snfs_proto
        { Snfs.Snfs_client.default_config with delayed_close = true } );
  ]

let () =
  let rows =
    List.map
      (fun (label, protocol) ->
        let result =
          Experiments.Andrew_exp.run_variant
            { Experiments.Andrew_exp.label; protocol; tmp = Experiments.Testbed.Tmp_remote }
        in
        let p = result.Experiments.Andrew_exp.phases in
        let c = result.Experiments.Andrew_exp.counts in
        [
          label;
          Printf.sprintf "%.1f" p.Workload.Andrew.makedir;
          Printf.sprintf "%.1f" p.Workload.Andrew.copy;
          Printf.sprintf "%.1f" p.Workload.Andrew.scandir;
          Printf.sprintf "%.1f" p.Workload.Andrew.readall;
          Printf.sprintf "%.1f" p.Workload.Andrew.make;
          Printf.sprintf "%.1f" (Workload.Andrew.total p);
          string_of_int (Stats.Counter.total c);
        ])
      variants
  in
  print_string
    (Stats.Table.render
       ~header:
         [ "configuration"; "MakeDir"; "Copy"; "ScanDir"; "ReadAll"; "Make";
           "Total"; "RPCs" ]
       rows);
  print_newline ();
  print_endline
    "Everything is remote-mounted (including /tmp). \"local disk\" runs\n\
     entirely on the client's own disk. The protocols differ only in\n\
     their cache-consistency machinery — which is the paper's point."
