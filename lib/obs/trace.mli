(** Deterministic structured event tracing.

    Records the life of individual operations — an RPC from client
    issue through retransmissions to reply delivery, a cache block's
    hit/miss/write-back journey, a protocol's callbacks and recovery
    handshakes — as a flat list of timestamped events. Two properties
    the simulator depends on:

    - {b determinism}: timestamps are simulated time and span ids are a
      per-tracer counter; no wall clock, no physical addresses. Two
      runs of the same seeded workload produce byte-identical traces.
    - {b zero overhead when disabled}: probe sites guard on {!on}
      before building argument lists, and every emit function is a
      no-op when no tracer is installed.

    Traces are exported with {!Chrome} (Chrome trace-event JSON, for
    [chrome://tracing] / Perfetto) or consumed directly via {!events}. *)

type value = Str of string | Int of int | Float of float | Bool of bool

(** [Flow_start]/[Flow_end] are Chrome flow events: an arrow from the
    operation that induced work (a callback, recall or invalidation)
    to the place the induced work ran, keyed by the inducing op id. *)
type kind = Begin | End | Instant | Flow_start | Flow_end

type event = {
  ts : float;  (** simulated seconds *)
  cat : string;  (** layer: "rpc", "net", "cache", "snfs", ... *)
  name : string;
  kind : kind;
  track : string;  (** rendered as a thread: host or cache name *)
  id : int;  (** span id; 0 for instants; inducing op id for flows *)
  args : (string * value) list;
}

type t

(** [create ()] makes an unbounded, unsampled tracer whose span ids
    start at 1.

    [id_base] offsets all allocated ids (spans and minted op ids), so
    tracers running on separate campaign slots allocate from disjoint
    ranges and merged traces never collide ({!Experiments.Campaign}).

    [sample_every] enables head-based operation sampling: {!mint}
    keeps one operation in every [sample_every] (by operation ordinal,
    a deterministic per-tracer counter) and drops the rest. Sampling
    is decided at the root, so a kept operation's whole tree is
    recorded and a dropped one's is skipped entirely. The rate is
    recorded in the Chrome export's [trace_config] metadata.

    [limit] (0 = unbounded) turns the tracer into a flight-recorder
    ring holding the newest [limit] events — see {!Flight}. *)
val create : ?id_base:int -> ?sample_every:int -> ?limit:int -> unit -> t

val id_base : t -> int
val sample_every : t -> int

(** The ring bound given at {!create} (0 when unbounded). *)
val limit : t -> int

(** Install [t] as the sink for all probe sites. The slot is
    {e per-domain} (Domain.DLS): an install only affects the calling
    domain, so independent simulations on separate domains
    ({!Experiments.Sweep}) each see their own tracer and never a
    sibling's. *)
(* snfs-lint: allow interface-drift — scoped-install lifecycle hook for test harnesses *)
val install : t -> unit

(* snfs-lint: allow interface-drift — scoped-install lifecycle hook for test harnesses *)
val uninstall : unit -> unit

(** Is a tracer installed? Probe sites check this before building
    argument lists, so disabled tracing allocates nothing. *)
val on : unit -> bool

(** The installed tracer, if any (the flight recorder inspects it). *)
(* snfs-lint: allow interface-drift — slot accessor for the flight recorder *)
val current : unit -> t option

(** [with_tracer t f] runs [f] with [t] installed, uninstalling on the
    way out (also on exceptions). *)
val with_tracer : t -> (unit -> 'a) -> 'a

(** Mint a fresh operation id from the installed tracer: the causal
    identity {!Causal} threads through RPCs and induced work. Returns
    0 when no tracer is installed, -1 when the tracer's head sampling
    dropped this operation, and a fresh positive id otherwise. *)
val mint : unit -> int

(** Point event. *)
val instant :
  ?track:string ->
  ?args:(string * value) list ->
  ts:float ->
  cat:string ->
  name:string ->
  unit ->
  unit

(** A span in progress. When tracing is disabled, {!span} returns a
    dummy that {!finish} ignores. *)
type span

(** The dummy span, for sites that only create a span conditionally. *)
val none : span

val span :
  ?track:string ->
  ?args:(string * value) list ->
  ts:float ->
  cat:string ->
  name:string ->
  unit ->
  span

(** Like {!span} but under a caller-chosen id — used for operation
    root spans, whose id {e is} the minted op id. *)
val span_with_id :
  ?track:string ->
  ?args:(string * value) list ->
  ts:float ->
  cat:string ->
  name:string ->
  id:int ->
  unit ->
  span

val finish : ?args:(string * value) list -> ts:float -> span -> unit

(** Emit the cause end of a flow arrow, keyed by the inducing op id.
    Rendered by Perfetto as an arrow to the matching {!flow_end}. *)
val flow_start :
  ?track:string ->
  ?args:(string * value) list ->
  ts:float ->
  id:int ->
  unit ->
  unit

(** Emit the effect end of a flow arrow, keyed by the inducing op id. *)
val flow_end :
  ?track:string ->
  ?args:(string * value) list ->
  ts:float ->
  id:int ->
  unit ->
  unit

(** Events in chronological (emission) order. For a ring tracer
    ([limit] > 0) only the newest [limit]-ish events are retained. *)
val events : t -> event list

val count : t -> int
