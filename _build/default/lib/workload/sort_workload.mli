(** The external-sort benchmark of Section 5.3.

    Unix [sort] on a file too large for memory: read the input in
    chunks, sort each chunk into a run file under [/usr/tmp], then
    merge runs (multi-way, possibly multiple passes), writing new
    temporaries and deleting consumed ones, until a single sorted
    output remains. Temporary traffic grows faster than the input —
    the paper's Table 5-3 inputs of 281 k / 1408 k / 2816 k use 304 k /
    2170 k / 7764 k of temporary storage. *)

type config = {
  input_bytes : int;
  input_path : string;  (** lives outside the file system under test *)
  output_path : string;
  tmp_dir : string;  (** the /usr/tmp under test *)
  run_bytes : int;  (** initial run size *)
  merge_width : int;
  run_cpu_per_kb : float;  (** in-memory sorting of one run *)
  merge_cpu_per_kb : float;  (** per KB passing through a merge *)
}

val default_config : config

type result = {
  elapsed : float;
  temp_bytes_written : int;  (** temporary bytes pushed through /usr/tmp *)
}

(** Create the input file (untimed). *)
val setup : App.t -> config -> unit

val run : App.t -> config -> result
