lib/stats/histogram.mli:
