lib/core/state_table.mli: Format Version
