(** Domain-parallel campaign fan-out.

    [map ~jobs ~f items] applies [f] to every element of [items] and
    returns the results in input order. With [jobs = 1] (or a single
    item) it is exactly [List.map f items] on the calling domain; with
    [jobs > 1] up to [jobs] OCaml domains (the caller's included) pull
    items from a shared queue.

    Every job must be an independent, self-contained simulation: it
    creates its own engine, installs its own tracer/metrics registry
    (both slots are per-domain, see {!Obs.Trace} / {!Obs.Metrics}), and
    shares no mutable state with other jobs. Under that contract a
    parallel sweep's results — including rendered reports, metrics
    exports and trace JSON — are byte-identical to the sequential
    sweep's.

    If a job raises, the first failure in {e input} order is re-raised
    (with its original backtrace) after all domains have finished, so
    failure reporting is deterministic too. *)

val map : jobs:int -> f:('a -> 'b) -> 'a list -> 'b list
