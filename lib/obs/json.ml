(* A minimal self-contained JSON parser — enough for the trace
   analyzer (and the exporter tests) to read back Chrome trace JSON
   without an external JSON dependency. Promoted from test_obs's
   hand-rolled validator. *)

type t =
  | Obj of (string * t) list
  | Arr of t list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Error of string

let parse (s : string) : t =
  let pos = ref 0 in
  let n = String.length s in
  let peek () =
    if !pos >= n then raise (Error "unexpected end") else s.[!pos]
  in
  let advance () = incr pos in
  let rec skip_ws () =
    if
      !pos < n
      && match s.[!pos] with ' ' | '\n' | '\t' | '\r' -> true | _ -> false
    then (
      advance ();
      skip_ws ())
  in
  let expect c =
    skip_ws ();
    if peek () <> c then
      raise (Error (Printf.sprintf "expected %c at byte %d" c !pos));
    advance ()
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' ->
          advance ();
          Buffer.contents buf
      | '\\' ->
          advance ();
          (match peek () with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then raise (Error "truncated \\u escape");
              let h = String.sub s (!pos + 1) 4 in
              pos := !pos + 4;
              Buffer.add_char buf (Char.chr (int_of_string ("0x" ^ h) land 0xff))
          | c -> raise (Error (Printf.sprintf "bad escape \\%c" c)));
          advance ();
          go ()
      | c when Char.code c < 0x20 -> raise (Error "control char in string")
      | c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
        advance ();
        skip_ws ();
        if peek () = '}' then (
          advance ();
          Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                members ((k, v) :: acc)
            | '}' ->
                advance ();
                Obj (List.rev ((k, v) :: acc))
            | c -> raise (Error (Printf.sprintf "bad char %c in object" c))
          in
          members []
    | '[' ->
        advance ();
        skip_ws ();
        if peek () = ']' then (
          advance ();
          Arr [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | ',' ->
                advance ();
                elements (v :: acc)
            | ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | c -> raise (Error (Printf.sprintf "bad char %c in array" c))
          in
          elements []
    | '"' -> Str (parse_string ())
    | 't' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "true" then (
          pos := !pos + 4;
          Bool true)
        else raise (Error "bad literal")
    | 'f' ->
        if !pos + 5 <= n && String.sub s !pos 5 = "false" then (
          pos := !pos + 5;
          Bool false)
        else raise (Error "bad literal")
    | 'n' ->
        if !pos + 4 <= n && String.sub s !pos 4 = "null" then (
          pos := !pos + 4;
          Null)
        else raise (Error "bad literal")
    | c when c = '-' || (c >= '0' && c <= '9') ->
        let start = !pos in
        while
          !pos < n
          &&
          match s.[!pos] with
          | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
          | _ -> false
        do
          advance ()
        done;
        Num (float_of_string (String.sub s start (!pos - start)))
    | c -> raise (Error (Printf.sprintf "unexpected char %c" c))
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then raise (Error "trailing garbage");
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let str = function Str s -> Some s | _ -> None
let num = function Num x -> Some x | _ -> None

let str_member k j = Option.bind (member k j) str
let num_member k j = Option.bind (member k j) num
