(** Unified metrics registry: counters, gauges, polled gauges and
    histograms, keyed by metric name plus sorted label pairs.

    Every simulation layer publishes its health here — the engine
    (events, queue depth), resources (busy time, queue length), the
    network and RPC transport, disks, block caches, and the four
    protocol stacks — so one export covers the numbers behind the
    paper's Tables 5-2/5-4/5-6 (per-operation RPC counts), Figures
    5-1/5-2 (server utilization and call rates), and the Table 4-1
    consistency actions.

    Like {!Trace}, the registry is an ambient slot: probe sites guard
    on {!on} and every emitting function is a no-op while no registry
    is installed, so instrumentation costs one load-and-compare when
    metrics are off. The slot is {e per-domain} (Domain.DLS), not
    process-global: each domain of a parallel campaign
    ({!Experiments.Sweep}) installs and samples its own registry
    without racing its siblings. Polled gauges are registered when a
    component is created, which therefore must happen while the
    registry is installed in the creating domain (as
    {!Experiments.Driver.run} arranges).

    Determinism: all values derive from simulated time and simulated
    events; exports iterate keys in sorted order, so two runs of the
    same seeded workload produce byte-identical output. *)

type t

(** Label pairs. Stored sorted by label key, so call-site order never
    matters. *)
type labels = (string * string) list

(** [create ()] makes an unbounded registry. [label_budget] caps the
    registry's cardinality for fleet-scale runs: at most
    [label_budget] distinct values are admitted per (metric name,
    label key) — first come, first kept, which is deterministic for a
    deterministic workload — and every later value folds into the
    ["other"] aggregate. Counters and histograms folded together
    accumulate naturally; polled gauges folded onto one ["other"]
    series report their sum. *)
val create : ?label_budget:int -> unit -> t

(** The configured budget, if any. *)
val label_budget : t -> int option

(** Registered series (instrument) count — what the label budget
    bounds. *)
val series_count : t -> int

(** {1 Global slot} *)

(* snfs-lint: allow interface-drift — scoped-install lifecycle hook for test harnesses *)
val install : t -> unit
(* snfs-lint: allow interface-drift — scoped-install lifecycle hook for test harnesses *)
val uninstall : unit -> unit

(** True while a registry is installed. *)
val on : unit -> bool

(** The installed registry, if any. *)
val installed : unit -> t option

(** Install for the duration of [f], uninstalling even on exception. *)
val with_metrics : t -> (unit -> 'a) -> 'a

(** {1 Emitting}

    All of these are no-ops while no registry is installed. A name must
    keep one instrument kind for the whole run; using it as a different
    kind raises [Invalid_argument]. *)

(** Add [n] (default 1) to a counter. *)
val incr : ?labels:labels -> ?n:int -> string -> unit

(** Set a gauge to [v]. *)
val set : ?labels:labels -> string -> float -> unit

(** Add [v] (may be negative) to a gauge, creating it at zero. *)
val add : ?labels:labels -> string -> float -> unit

(** Record [v] into a histogram. *)
val observe : ?labels:labels -> string -> float -> unit

(** Register a polled gauge: [f] is evaluated at sampling and export
    time. [cumulative] (default false) marks a monotone total (such as
    {!Sim.Resource.busy_time}) whose sampled time series should hold
    per-bin deltas rather than levels. Re-registering the same
    name+labels replaces the thunk (last registration wins). *)
val register_poll :
  ?labels:labels -> ?cumulative:bool -> string -> (unit -> float) -> unit

(** {1 Reading} *)

(** Current value of a counter (0 when absent). *)
val counter_value : t -> ?labels:labels -> string -> int

(** Current value of a gauge or polled gauge (0 when absent; polls are
    evaluated). *)
val gauge_value : t -> ?labels:labels -> string -> float

(** All label sets registered under a counter name, with their values,
    sorted by labels. *)
val counters_with : t -> string -> (labels * int) list

(** The histogram under a name (created empty on first use). *)
(* snfs-lint: allow interface-drift — registry accessor for report scripts *)
val histogram : t -> ?labels:labels -> string -> Stats.Histogram.t

(** {1 Sampling}

    A sampler snapshots the registry into {!Stats.Timeseries} bins at a
    fixed cadence of simulated time. [start_sampling] resets any
    previous sampling state; [sample] is pure bookkeeping — scheduling
    the periodic calls is the caller's job (a simulation process; see
    {!Experiments.Driver.run}), which keeps this library free of any
    dependency on the engine. *)

(** Begin sampling: series bins are [interval] wide and times are
    relative to [origin]. *)
val start_sampling : t -> origin:float -> interval:float -> unit

val sampling_active : t -> bool

(** Take one sample at absolute simulated time [now]. Counters and
    cumulative polls contribute their delta since the previous sample;
    gauges and level polls contribute their current value. The sample
    is attributed to the middle of the interval that just ended (so a
    sample taken at the end of bin [k] lands in bin [k]). No-op when
    sampling has not started. *)
val sample : t -> now:float -> unit

(** The sampled series under a metric name: (labels, series) pairs
    sorted by labels. Empty when sampling never ran. *)
val series : t -> string -> (labels * Stats.Timeseries.t) list

(** {1 Export}

    Both exports are deterministic: keys are emitted in sorted order
    and all numbers are formatted with fixed conversions. *)

(** Prometheus text exposition format: a point-in-time snapshot of all
    counters, gauges (polls evaluated) and histograms (as summaries
    with p50/p90/p99 quantiles). *)
val to_prometheus : t -> string

(** CSV time series: header [series,time,value], one row per sampled
    bin, sorted by series name then time. Empty (header only) when
    sampling never ran. *)
val to_csv : t -> string

(** Plain-text "flight report": counters, gauges and histogram
    summaries as tables, followed by the per-procedure latency table
    when [latency] is given and non-empty. *)
val report : ?latency:Latency.t -> t -> string
