(** Synthetic source tree for the Andrew benchmark.

    The original benchmark input was ~70 files / ~200 KB of C source in
    a few directories, of which a subset is compiled by the Make phase
    against a set of shared headers. Sizes are drawn deterministically
    from the seed so runs are exactly reproducible. *)

type spec = {
  dirs : int;  (** subdirectories under the source root *)
  files_per_dir : int;
  c_files_per_dir : int;  (** of which this many are .c sources *)
  headers : int;  (** shared header files in an include dir *)
  min_file_bytes : int;
  max_file_bytes : int;
  seed : int64;
}

(** ~70 files, ~200 KB, 17 compiled sources, 12 headers. *)
val default : spec

type tree = {
  spec : spec;
  root : string;  (** absolute path of the source root *)
  dirs : string list;  (** relative directory paths, creation order *)
  files : (string * int) list;  (** (relative path, bytes), all files *)
  c_files : (string * int) list;  (** compiled subset *)
  header_files : (string * int) list;
}

(** Lay out the tree (pure; no I/O). *)
val plan : spec -> root:string -> tree

val total_bytes : tree -> int
val file_count : tree -> int

(** Create the source tree in the file system. *)
val populate : App.t -> tree -> unit

(** [at_root tree ~root] is the same layout rooted elsewhere (the
    benchmark's target subtree). *)
val at_root : tree -> root:string -> tree
