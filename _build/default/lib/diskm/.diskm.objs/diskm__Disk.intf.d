lib/diskm/disk.mli: Sim
