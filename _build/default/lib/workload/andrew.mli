(** The Andrew benchmark (Howard et al. 1988), as used in Section 5.2 —
    the Ousterhout-modified variant with a fixed-cost "portable
    compiler" so results are comparable across systems.

    Five phases over a source tree:
    - {b MakeDir}: build a target subtree of identical structure;
    - {b Copy}: copy every file into the target subtree;
    - {b ScanDir}: recursively stat everything (no data reads);
    - {b ReadAll}: read every byte of every file once;
    - {b Make}: "compile" the C sources (read source + shared headers,
      compute, produce and delete a compiler temporary in /tmp, write a
      .o) and link the result.

    CPU costs are parameters of the simulated compiler, chosen once so
    the local-disk column lands near Table 5-1's, and then held fixed
    across protocols. *)

type config = {
  tree : File_tree.spec;
  src_root : string;
  dst_root : string;
  tmp_dir : string;  (** compiler temporaries go here (Section 5.2) *)
  mkdir_cpu : float;
  copy_cpu_per_file : float;
  scan_cpu_per_entry : float;
  read_cpu_per_file : float;
  read_cpu_per_kb : float;
  compile_cpu_base : float;
  compile_cpu_per_kb : float;
  headers_per_compile : int;
  temp_bytes_factor : float;  (** temp file size vs source size *)
  obj_bytes_factor : float;  (** .o size vs source size *)
  link_cpu : float;
}

val default_config : config

type phase_times = {
  makedir : float;
  copy : float;
  scandir : float;
  readall : float;
  make : float;
}

val total : phase_times -> float

(** Create the source tree (not part of the timed benchmark). *)
val setup : App.t -> config -> File_tree.tree

(** Run the five phases and return per-phase elapsed virtual time. *)
val run : App.t -> config -> File_tree.tree -> phase_times
