(* Counters are stored as int ref cells so that hot callers can look a
   name up once ([cell]) and bump the ref directly, instead of paying a
   string hash + find + replace on every increment. *)
type t = (string, int ref) Hashtbl.t

let create () = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some c -> c
  | None ->
      let c = ref 0 in
      Hashtbl.replace t name c;
      c

let incr t ?(n = 1) name =
  let c = cell t name in
  c := !c + n

let get t name = match Hashtbl.find_opt t name with Some c -> !c | None -> 0

let total t = Hashtbl.fold (fun _ c acc -> acc + !c) t 0

let total_of t names = List.fold_left (fun acc n -> acc + get t n) 0 names

let to_list t =
  Hashtbl.fold (fun k c acc -> (k, !c) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t = Hashtbl.reset t

(* fresh refs, not Hashtbl.copy: a shared ref would let post-snapshot
   increments leak into the snapshot *)
let snapshot t =
  let out = create () in
  Hashtbl.iter (fun k c -> Hashtbl.replace out k (ref !c)) t;
  out

(* A counter [reset] between the two snapshots would otherwise surface
   as a negative delta and silently poison interval arithmetic. *)
let diff later earlier =
  let out = create () in
  Hashtbl.iter
    (fun name c ->
      let d = !c - get earlier name in
      if d > 0 then Hashtbl.replace out name (ref d))
    later;
  out
