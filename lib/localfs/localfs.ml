type ino = int

type ftype = File | Dir

type attrs = {
  ino : ino;
  gen : int;
  ftype : ftype;
  size : int;
  nlink : int;
  mtime : float;
  ctime : float;
}

type error = Noent | Exist | Notdir | Isdir | Notempty | Stale | Again

exception Error of error

let error_to_string = function
  | Noent -> "no such file or directory"
  | Exist -> "file exists"
  | Notdir -> "not a directory"
  | Isdir -> "is a directory"
  | Notempty -> "directory not empty"
  | Stale -> "stale file handle"
  | Again -> "resource temporarily unavailable"

let fail e = raise (Error e)

type meta_policy = [ `Sync | `Delayed ]

type inode = {
  i_ino : ino;
  i_gen : int;
  i_ftype : ftype;
  mutable i_size : int;
  mutable i_nlink : int;
  mutable i_mtime : float;
  i_ctime : float;
  i_entries : (string, ino) Hashtbl.t option; (* Some for directories *)
}

type t = {
  engine : Sim.Engine.t;
  name : string;
  block_size : int;
  meta_policy : meta_policy;
  cache : Blockcache.Cache.t;
  (* Dense array indexed by ino, not a hash table: inos are small
     consecutive ints from [next_ino], and [get_inode] runs on every
     fs operation (often several times). [None] marks free slots. *)
  mutable inodes : inode option array;
  mutable next_ino : ino;
  mutable meta_stamp : int;
}

(* The inode table lives in a pseudo-file of the buffer cache so that
   structural writes cost real disk traffic. *)
let inode_table_fid = -1

(* Indirect blocks live in another pseudo-file: one per inode. Blocks
   past the direct range force an indirect-block update, which is part
   of why an NFS synchronous write costs 2-3 disk operations. *)
let indirect_fid = -2

let direct_blocks = 12

let inodes_per_block = 32

let root_ino = 2

let create engine ~name ~disk ~cache_blocks ?(block_size = 4096)
    ?(meta_policy = `Delayed) () =
  (* abstract disk layout: each file's blocks are contiguous, so
     sequential file I/O pays positioning only once per extent *)
  let disk_address ~file ~index =
    if file = inode_table_fid then 1_000_000_000 + index
    else if file = indirect_fid then 1_100_000_000 + index
    else (file * 16_384) + index
  in
  let backend =
    {
      Blockcache.Cache.read_block =
        (fun ~ctx ~file ~index ->
          Diskm.Disk.read
            ~at:(disk_address ~file ~index)
            ~ctx disk ~bytes:block_size;
          (0, block_size));
      write_block =
        (fun ~ctx ~file ~index ~stamp:_ ~len:_ ->
          Diskm.Disk.write
            ~at:(disk_address ~file ~index)
            ~ctx disk ~bytes:block_size);
    }
  in
  let cache =
    Blockcache.Cache.create engine ~name:(name ^ ".bufcache")
      ~capacity_blocks:cache_blocks ~block_size backend
  in
  let t =
    {
      engine;
      name;
      block_size;
      meta_policy;
      cache;
      inodes = Array.make 256 None;
      next_ino = root_ino;
      meta_stamp = 1_000_000_000;
    }
  in
  let root =
    {
      i_ino = root_ino;
      i_gen = 1;
      i_ftype = Dir;
      i_size = 0;
      i_nlink = 2;
      i_mtime = 0.0;
      i_ctime = 0.0;
      i_entries = Some (Hashtbl.create 16);
    }
  in
  t.inodes.(root_ino) <- Some root;
  t.next_ino <- root_ino + 1;
  t

let engine t = t.engine
let name t = t.name
let block_size t = t.block_size
let cache t = t.cache

let start_syncer t ?min_age ~interval () =
  Blockcache.Cache.start_syncer t.cache ?min_age ~interval ()

let root _t = root_ino

let next_meta_stamp t =
  t.meta_stamp <- t.meta_stamp + 1;
  t.meta_stamp

let set_inode t ino inode =
  let cap = Array.length t.inodes in
  if ino >= cap then begin
    let bigger = Array.make (max (2 * cap) (ino + 1)) None in
    Array.blit t.inodes 0 bigger 0 cap;
    t.inodes <- bigger
  end;
  t.inodes.(ino) <- Some inode

let drop_inode t ino =
  if ino >= 0 && ino < Array.length t.inodes then t.inodes.(ino) <- None

let get_inode t ino =
  if ino >= 0 && ino < Array.length t.inodes then
    match Array.unsafe_get t.inodes ino with
    | Some i -> i
    | None -> fail Stale
  else fail Stale

let inode_block_index ino = ino / inodes_per_block

(* Charge a read of the inode-table block holding [ino] (usually a
   cache hit once warm). *)
let read_inode_block ?ctx t ino =
  ignore
    (Blockcache.Cache.read ?ctx t.cache ~file:inode_table_fid
       ~index:(inode_block_index ino))

let meta_mode t : [ `Sync | `Async | `Delayed ] =
  match t.meta_policy with `Sync -> `Sync | `Delayed -> `Delayed

(* Charge a write of the inode-table block holding [ino]. *)
let write_inode_block ?ctx t ino =
  Blockcache.Cache.write ?ctx t.cache ~file:inode_table_fid
    ~index:(inode_block_index ino) ~stamp:(next_meta_stamp t)
    ~len:t.block_size (meta_mode t)

let dir_entries inode =
  match inode.i_entries with
  | Some entries -> entries
  | None -> fail Notdir

(* Directory contents live in the directory's own pseudo-file; an entry
   hashes to a block so big directories cost more than small ones. *)
let dir_block_of_name t inode name =
  let nblocks = max 1 ((inode.i_size + t.block_size - 1) / t.block_size) in
  Hashtbl.hash name mod nblocks

let read_dir_block ?ctx t inode name =
  ignore
    (Blockcache.Cache.read ?ctx t.cache ~file:inode.i_ino
       ~index:(dir_block_of_name t inode name))

let write_dir_block ?ctx t inode name =
  Blockcache.Cache.write ?ctx t.cache ~file:inode.i_ino
    ~index:(dir_block_of_name t inode name)
    ~stamp:(next_meta_stamp t) ~len:t.block_size (meta_mode t)

let dir_entry_bytes name = 16 + String.length name

let getattr ?ctx t ino =
  let i = get_inode t ino in
  read_inode_block ?ctx t ino;
  {
    ino = i.i_ino;
    gen = i.i_gen;
    ftype = i.i_ftype;
    size = i.i_size;
    nlink = i.i_nlink;
    mtime = i.i_mtime;
    ctime = i.i_ctime;
  }

let lookup ?ctx t ~dir name =
  let d = get_inode t dir in
  let entries = dir_entries d in
  read_dir_block ?ctx t d name;
  match Hashtbl.find_opt entries name with
  | Some ino -> ino
  | None -> fail Noent

let alloc_inode t ftype =
  let ino = t.next_ino in
  t.next_ino <- ino + 1;
  let now = Sim.Engine.now t.engine in
  let inode =
    {
      i_ino = ino;
      i_gen = 1;
      i_ftype = ftype;
      i_size = 0;
      i_nlink = (match ftype with File -> 1 | Dir -> 2);
      i_mtime = now;
      i_ctime = now;
      i_entries = (match ftype with File -> None | Dir -> Some (Hashtbl.create 16));
    }
  in
  set_inode t ino inode;
  inode

let add_entry ?ctx t dir name ftype =
  let d = get_inode t dir in
  let entries = dir_entries d in
  read_dir_block ?ctx t d name;
  if Hashtbl.mem entries name then fail Exist;
  let inode = alloc_inode t ftype in
  Hashtbl.replace entries name inode.i_ino;
  d.i_size <- d.i_size + dir_entry_bytes name;
  d.i_mtime <- Sim.Engine.now t.engine;
  write_dir_block ?ctx t d name;
  write_inode_block ?ctx t d.i_ino;
  write_inode_block ?ctx t inode.i_ino;
  inode.i_ino

let create_file ?ctx t ~dir name = add_entry ?ctx t dir name File
let mkdir ?ctx t ~dir name = add_entry ?ctx t dir name Dir

let free_data t inode =
  (* dropping a file's dirty blocks without writing them is the
     write-aversion effect measured in Section 5.4 *)
  ignore (Blockcache.Cache.cancel_dirty t.cache ~file:inode.i_ino)

let remove ?ctx t ~dir name =
  let d = get_inode t dir in
  let entries = dir_entries d in
  read_dir_block ?ctx t d name;
  match Hashtbl.find_opt entries name with
  | None -> fail Noent
  | Some ino ->
      let inode = get_inode t ino in
      if inode.i_ftype = Dir then fail Isdir;
      Hashtbl.remove entries name;
      d.i_size <- max 0 (d.i_size - dir_entry_bytes name);
      d.i_mtime <- Sim.Engine.now t.engine;
      write_dir_block ?ctx t d name;
      inode.i_nlink <- inode.i_nlink - 1;
      if inode.i_nlink = 0 then begin
        free_data t inode;
        drop_inode t ino
      end;
      write_inode_block ?ctx t ino;
      write_inode_block ?ctx t d.i_ino

let rmdir ?ctx t ~dir name =
  let d = get_inode t dir in
  let entries = dir_entries d in
  read_dir_block ?ctx t d name;
  match Hashtbl.find_opt entries name with
  | None -> fail Noent
  | Some ino ->
      let inode = get_inode t ino in
      if inode.i_ftype <> Dir then fail Notdir;
      if Hashtbl.length (dir_entries inode) <> 0 then fail Notempty;
      Hashtbl.remove entries name;
      d.i_size <- max 0 (d.i_size - dir_entry_bytes name);
      d.i_mtime <- Sim.Engine.now t.engine;
      write_dir_block ?ctx t d name;
      drop_inode t ino;
      write_inode_block ?ctx t ino;
      write_inode_block ?ctx t d.i_ino

let rename ?ctx t ~fromdir fname ~todir tname =
  let fd = get_inode t fromdir in
  let fentries = dir_entries fd in
  read_dir_block ?ctx t fd fname;
  match Hashtbl.find_opt fentries fname with
  | None -> fail Noent
  | Some ino ->
      let td = get_inode t todir in
      let tentries = dir_entries td in
      read_dir_block ?ctx t td tname;
      (* clobber an existing target, Unix-style *)
      (match Hashtbl.find_opt tentries tname with
      | Some existing when existing <> ino ->
          let ei = get_inode t existing in
          if ei.i_ftype = Dir then fail Isdir;
          ei.i_nlink <- ei.i_nlink - 1;
          if ei.i_nlink = 0 then begin
            free_data t ei;
            drop_inode t existing
          end
      | Some _ | None -> ());
      Hashtbl.remove fentries fname;
      fd.i_size <- max 0 (fd.i_size - dir_entry_bytes fname);
      Hashtbl.replace tentries tname ino;
      td.i_size <- td.i_size + dir_entry_bytes tname;
      let now = Sim.Engine.now t.engine in
      fd.i_mtime <- now;
      td.i_mtime <- now;
      write_dir_block ?ctx t fd fname;
      write_dir_block ?ctx t td tname;
      write_inode_block ?ctx t fd.i_ino;
      write_inode_block ?ctx t td.i_ino

let readdir ?ctx t ~dir =
  let d = get_inode t dir in
  let entries = dir_entries d in
  (* scanning a directory reads all its blocks *)
  let nblocks = max 1 ((d.i_size + t.block_size - 1) / t.block_size) in
  for index = 0 to nblocks - 1 do
    ignore (Blockcache.Cache.read ?ctx t.cache ~file:d.i_ino ~index)
  done;
  (* snfs-fanout: bounded — one directory's entries; readdir is O(entries) *)
  Hashtbl.fold (fun name _ acc -> name :: acc) entries []
  |> List.sort String.compare

let setattr ?ctx t ino ?size ?mtime () =
  let i = get_inode t ino in
  read_inode_block ?ctx t ino;
  (match size with
  | None -> ()
  | Some size ->
      if size < 0 then invalid_arg "Localfs.setattr: negative size";
      if i.i_ftype = Dir then fail Isdir;
      if size = 0 && i.i_size > 0 then
        (* truncation drops all cached data, cancelling pending writes *)
        ignore (Blockcache.Cache.cancel_dirty t.cache ~file:ino);
      i.i_size <- size;
      i.i_mtime <- Sim.Engine.now t.engine);
  (match mtime with
  | None -> ()
  | Some m -> i.i_mtime <- m);
  write_inode_block ?ctx t ino

let read_block ?ctx t ino ~index =
  let i = get_inode t ino in
  if i.i_ftype = Dir then fail Isdir;
  if index < 0 then invalid_arg "Localfs.read_block: negative index";
  if index * t.block_size >= i.i_size then (0, 0) (* hole / EOF *)
  else begin
    let stamp, len = Blockcache.Cache.read ?ctx t.cache ~file:ino ~index in
    let valid = min len (i.i_size - (index * t.block_size)) in
    (stamp, valid)
  end

let write_block ?ctx t ino ~index ~stamp ~len mode =
  let i = get_inode t ino in
  if i.i_ftype = Dir then fail Isdir;
  if index < 0 then invalid_arg "Localfs.write_block: negative index";
  Blockcache.Cache.write ?ctx t.cache ~file:ino ~index ~stamp ~len mode;
  let endpos = (index * t.block_size) + len in
  if endpos > i.i_size then i.i_size <- endpos;
  i.i_mtime <- Sim.Engine.now t.engine;
  (* a synchronous data write carries its metadata to disk with it (the
     NFS server's stable-storage rule): the inode, and for blocks past
     the direct range the indirect block too; ordinary writes leave the
     metadata update delayed — Unix wrote inodes back periodically, not
     on every write system call *)
  match (mode, t.meta_policy) with
  | `Sync, `Sync ->
      Blockcache.Cache.write ?ctx t.cache ~file:inode_table_fid
        ~index:(inode_block_index ino) ~stamp:(next_meta_stamp t)
        ~len:t.block_size `Sync;
      if index >= direct_blocks then
        Blockcache.Cache.write ?ctx t.cache ~file:indirect_fid ~index:ino
          ~stamp:(next_meta_stamp t) ~len:t.block_size `Sync
  | (`Sync | `Async | `Delayed), _ ->
      Blockcache.Cache.write ?ctx t.cache ~file:inode_table_fid
        ~index:(inode_block_index ino) ~stamp:(next_meta_stamp t)
        ~len:t.block_size `Delayed;
      if index >= direct_blocks then
        Blockcache.Cache.write ?ctx t.cache ~file:indirect_fid ~index:ino
          ~stamp:(next_meta_stamp t) ~len:t.block_size `Delayed

let fsync ?ctx t ino =
  let _ = get_inode t ino in
  Blockcache.Cache.flush_file ?ctx t.cache ~file:ino;
  Blockcache.Cache.flush_file ?ctx t.cache ~file:inode_table_fid

let sync_all t = Blockcache.Cache.flush_all t.cache

let data_writes_averted t = Blockcache.Cache.writes_averted t.cache
