lib/stats/counter.mli:
