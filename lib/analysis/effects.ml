(* Interprocedural may-yield effect inference.

   A fixpoint over the whole-program call graph computing, for every
   toplevel binding in the tree, whether calling it can reach a
   cooperative blocking point (Engine sleep/suspend, Ivar/Mailbox
   waits, Rpc.call, disk and cache waits, ...). Seeds are (a) nodes
   whose own id matches a primitive blocking suffix — [Sim.Engine.sleep]
   IS the primitive; its body has nothing deeper to point at — and
   (b) nodes whose body applies a primitive suffix in synchronous
   position (outside deferred thunks). The effect then propagates up
   the synchronous reference edges: referencing a may-yield binding
   outside a deferred thunk makes the referrer may-yield, which
   over-approximates higher-order flow (a yielding function passed to
   [List.iter] taints the caller even though the head is [List.iter]).

   [pass_yield_race] consumes the summaries through [blocking_head]:
   an application head that *resolves* is judged by its inferred
   summary (a pure function named [read] in a module named [Cache] is
   no longer presumed blocking — fewer false positives than the old
   per-module suffix heuristic), and only an unresolvable head falls
   back to the primitive suffix match. *)

let blocking_suffixes =
  [
    [ "Engine"; "sleep" ];
    [ "Engine"; "suspend" ];
    [ "Engine"; "yield" ];
    [ "Ivar"; "read" ];
    [ "Ivar"; "read_timeout" ];
    [ "Mailbox"; "recv" ];
    [ "Mailbox"; "recv_timeout" ];
    [ "Resource"; "acquire" ];
    [ "Resource"; "use" ];
    [ "Semaphore"; "acquire" ];
    [ "Semaphore"; "with_unit" ];
    [ "Waitgroup"; "wait" ];
    [ "Rpc"; "call" ];
    [ "Disk"; "read" ];
    [ "Disk"; "write" ];
    [ "Cache"; "read" ];
    [ "Cache"; "write" ];
    [ "Cache"; "flush_file" ];
    [ "Cache"; "flush_all" ];
    [ "Cache"; "flush_block" ];
    [ "Cache"; "wait_pending" ];
    [ "Wire"; "read" ];
    [ "Wire"; "write" ];
    [ "Wire"; "lookup" ];
    [ "Wire"; "getattr" ];
    [ "Wire"; "setattr" ];
    [ "Wire"; "create" ];
    [ "Wire"; "mkdir" ];
    [ "Wire"; "remove" ];
    [ "Wire"; "rmdir" ];
    [ "Wire"; "rename" ];
    [ "Wire"; "readdir" ];
    [ "Wire"; "snfs_open" ];
    [ "Wire"; "snfs_close" ];
  ]

let deferring_suffixes = Callgraph.default_defer

let is_primitive p = List.exists (Astutil.has_suffix p) blocking_suffixes

let may_yield cg =
  let summary : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  (* reverse synchronous edges, for worklist propagation *)
  let callers : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  let nodes = Callgraph.nodes cg in
  List.iter
    (fun (n : Callgraph.node) ->
      List.iter
        (fun callee ->
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt callers callee)
          in
          Hashtbl.replace callers callee (n.Callgraph.id :: prev))
        (Callgraph.sync_refs cg n.Callgraph.id))
    nodes;
  let queue = Queue.create () in
  let mark id =
    if not (Hashtbl.mem summary id) then begin
      Hashtbl.replace summary id ();
      Queue.add id queue
    end
  in
  List.iter
    (fun (n : Callgraph.node) ->
      let id_path = n.Callgraph.module_path @ [ n.Callgraph.name ] in
      if is_primitive id_path then mark n.Callgraph.id
      else if List.exists is_primitive (Callgraph.sync_heads cg n.Callgraph.id)
      then mark n.Callgraph.id)
    nodes;
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some id ->
        List.iter mark (Option.value ~default:[] (Hashtbl.find_opt callers id));
        drain ()
  in
  drain ();
  summary

(* Is an application with head path [p], written in [file] inside
   [module_path], a blocking call? Resolved heads trust the inferred
   summary; unresolvable heads (externals, locals the graph cannot
   name) fall back to the primitive suffix match. *)
let blocking_head cg summary ~file ~module_path p =
  match Callgraph.resolve_at cg ~file ~module_path p with
  | [] -> is_primitive p
  | ids -> List.exists (Hashtbl.mem summary) ids

let is_lambda e =
  match e.Parsetree.pexp_desc with
  | Parsetree.Pexp_fun _ | Parsetree.Pexp_function _ -> true
  | _ -> false

(* Does an expression contain a blocking application in synchronous
   position? Used by passes that must judge a lambda body (the thunk
   handed to an iterator) rather than a toplevel binding. *)
let expr_blocks cg summary ~file ~module_path e =
  let open Parsetree in
  let found = ref false in
  let rec expr ~sync it e =
    if !found then ()
    else
      let e = Astutil.uncurry_pipes e in
      match e.pexp_desc with
      | Pexp_ident { txt; _ } when sync -> (
          match Astutil.flatten txt with
          | Some p ->
              if blocking_head cg summary ~file ~module_path p then
                found := true
          | None -> ())
      | Pexp_apply (head, args) ->
          (match Astutil.path_of_expr head with
          | Some p when List.exists (Astutil.has_suffix p) deferring_suffixes
            ->
              List.iter
                (fun (_, a) ->
                  let sync' = sync && not (is_lambda a) in
                  expr ~sync:sync' it a)
                args
          | _ ->
              expr ~sync it head;
              List.iter (fun (_, a) -> expr ~sync it a) args)
      | _ ->
          let sub _it child = expr ~sync it child in
          let it' = { it with Ast_iterator.expr = sub } in
          Ast_iterator.default_iterator.expr it' e
  in
  expr ~sync:true Ast_iterator.default_iterator e;
  !found
