type t = {
  engine : Engine.t;
  name : string;
  capacity : int;
  mutable held : int;
  waiters : (unit -> unit) Queue.t;
  (* float array cells, not mutable float fields: in a mixed record
     every store to a mutable float field boxes, and these are written
     on every acquire/release/reserve on the hot RPC and disk paths *)
  busy : float array; (* [0] accumulated; [1] busy-since (held > 0) *)
  reserved : float array; (* [0] reserved-until (reserve-mode, cap 1) *)
}

let create engine ?(capacity = 1) name =
  if capacity <= 0 then invalid_arg "Resource.create: capacity must be > 0";
  let t =
    {
      engine;
      name;
      capacity;
      held = 0;
      waiters = Queue.create ();
      busy = [| 0.0; 0.0 |];
      reserved = [| 0.0 |];
    }
  in
  (* busy time is monotone, so its sampled series holds per-bin deltas
     (utilization once divided by the bin width); queue depth is a level *)
  Obs.Metrics.register_poll
    ~labels:[ ("resource", name) ]
    ~cumulative:true "sim_resource_busy_seconds" (fun () ->
      if t.held > 0 then t.busy.(0) +. (Engine.now t.engine -. t.busy.(1))
      else t.busy.(0));
  Obs.Metrics.register_poll
    ~labels:[ ("resource", name) ]
    "sim_resource_queue_depth"
    (fun () -> float_of_int (Queue.length t.waiters));
  t

let name t = t.name
let capacity t = t.capacity
let in_use t = t.held
let queue_length t = Queue.length t.waiters

let note_acquired t =
  if t.held = 0 then t.busy.(1) <- Engine.now t.engine;
  t.held <- t.held + 1

let note_released t =
  t.held <- t.held - 1;
  if t.held = 0 then t.busy.(0) <- t.busy.(0) +. (Engine.now t.engine -. t.busy.(1))

let acquire t =
  if t.held < t.capacity then note_acquired t
  else begin
    Engine.suspend t.engine (fun resume -> Queue.push resume t.waiters);
    note_acquired t
  end

let release t =
  note_released t;
  if not (Queue.is_empty t.waiters) then
    let w = Queue.pop t.waiters in
    w ()

let use t dur =
  acquire t;
  match Engine.sleep t.engine dur with
  | () -> release t
  | exception e ->
      release t;
      raise e

let reserve t dur =
  if t.capacity <> 1 then
    invalid_arg "Resource.reserve: only capacity-1 resources";
  if dur < 0.0 then invalid_arg "Resource.reserve: negative duration";
  let now = Engine.now t.engine in
  let start = if t.reserved.(0) > now then t.reserved.(0) else now in
  t.reserved.(0) <- start +. dur;
  (* busy time is committed at reservation; reservations are issued in
     simulation order and back-to-back under load, so for the sub-ms
     holds this is used for, the sampled utilization series is
     indistinguishable from held/released accounting *)
  t.busy.(0) <- t.busy.(0) +. dur;
  start +. dur

let busy_time t =
  if t.held > 0 then t.busy.(0) +. (Engine.now t.engine -. t.busy.(1))
  else t.busy.(0)
