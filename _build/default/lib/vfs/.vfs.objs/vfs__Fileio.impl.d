lib/vfs/fileio.ml: Fs List Localfs Mount Stamp
