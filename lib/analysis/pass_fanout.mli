(** Server fan-out cost lint (ROADMAP item 1: the recall storm).

    Per-request server work must stay O(1) for the paper's §4.2 numbers
    to mean anything: iterating the whole client or open-file table
    while answering one RPC turns an open into an O(clients) scan, and
    a callback broadcast into O(clients) blocking round-trips.

    The server-reachable set is the whole-program call-graph closure of
    every [Rpc.serve] application — the handler argument plus every
    toplevel binding of a serve-applying file (dispatch and spawned
    maintenance loops alike). Inside it the pass flags:

    - iteration whose per-element function may yield (inferred
      interprocedurally): an O(n) blocking fan-out per request;
    - [Hashtbl.iter]/[Hashtbl.fold] over a live table;
    - [List] iteration over a {i table projection} — a function
      inferred, by fixpoint over application heads, to build its
      result from a table fold (e.g. [State_table.files],
      [clients_with_state]).

    A genuinely bounded site is waived in place with
    [(* snfs-fanout: bounded <reason> *)] on the flagged or previous
    line, so the bound is documented where the loop lives. Unwaived
    sites on the real tree are the measured backlog for ROADMAP item 1
    and live in the committed lint baseline. *)

val pass : Pass.t
