lib/workload/andrew.ml: App Array File_tree Filename List Printf Vfs
