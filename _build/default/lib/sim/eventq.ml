type entry = { time : float; seq : int; fn : unit -> unit }

type t = { mutable arr : entry array; mutable len : int }

let dummy = { time = 0.0; seq = 0; fn = (fun () -> ()) }

let create () = { arr = Array.make 64 dummy; len = 0 }

let is_empty t = t.len = 0

let length t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t =
  let arr = Array.make (2 * Array.length t.arr) dummy in
  Array.blit t.arr 0 arr 0 t.len;
  t.arr <- arr

let push t ~time ~seq fn =
  if t.len = Array.length t.arr then grow t;
  let e = { time; seq; fn } in
  (* sift up *)
  let i = ref t.len in
  t.len <- t.len + 1;
  t.arr.(!i) <- e;
  let continue_sift = ref true in
  while !continue_sift && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before e t.arr.(parent) then begin
      t.arr.(!i) <- t.arr.(parent);
      t.arr.(parent) <- e;
      i := parent
    end
    else continue_sift := false
  done

let pop t =
  if t.len = 0 then raise Not_found;
  let top = t.arr.(0) in
  t.len <- t.len - 1;
  let last = t.arr.(t.len) in
  t.arr.(t.len) <- dummy;
  if t.len > 0 then begin
    t.arr.(0) <- last;
    (* sift down *)
    let i = ref 0 in
    let continue_sift = ref true in
    while !continue_sift do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.len && before t.arr.(l) t.arr.(!smallest) then smallest := l;
      if r < t.len && before t.arr.(r) t.arr.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = t.arr.(!i) in
        t.arr.(!i) <- t.arr.(!smallest);
        t.arr.(!smallest) <- tmp;
        i := !smallest
      end
      else continue_sift := false
    done
  end;
  (top.time, top.seq, top.fn)

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time
