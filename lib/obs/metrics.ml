type labels = (string * string) list

let norm labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

type instrument =
  | Counter of { mutable c : int }
  | Gauge of { mutable g : float }
  | Poll of { mutable f : unit -> float; cumulative : bool }
  | Hist of Stats.Histogram.t

type key = string * labels

type sampling = {
  origin : float;
  interval : float;
  (* previous sampled value for counters and cumulative polls *)
  baselines : (key, float) Hashtbl.t;
  series : (key, Stats.Timeseries.t) Hashtbl.t;
}

type t = {
  tbl : (key, instrument) Hashtbl.t;
  mutable order : key list; (* registration order, newest first *)
  mutable sampling : sampling option;
  (* Observability budget: at most [label_budget] distinct values per
     (metric name, label key); later values fold into "other". The
     admitted sets live here, keyed by (name, label key). *)
  label_budget : int option;
  label_values : (string * string, (string, unit) Hashtbl.t) Hashtbl.t;
}

let create ?label_budget () =
  (match label_budget with
  | Some k when k < 1 ->
      invalid_arg "Metrics.create: label_budget must be >= 1"
  | Some _ | None -> ());
  {
    tbl = Hashtbl.create 64;
    order = [];
    sampling = None;
    label_budget;
    label_values = Hashtbl.create 16;
  }

let label_budget t = t.label_budget

(* The fold-over name every overflowing label value collapses to. *)
let other = "other"

(* Apply the label budget: the first [k] distinct values seen for a
   (name, label key) pair are admitted — in registration order, so the
   policy is deterministic for a deterministic workload — and every
   later value is rewritten to [other]. Sets [folded] when a rewrite
   happened (register_poll aggregates folded polls by summing). *)
let fold_labels t name labels k folded =
  List.map
    (fun ((key, v) as pair) ->
      if String.equal v other then pair
      else
        let seen =
          match Hashtbl.find_opt t.label_values (name, key) with
          | Some s -> s
          | None ->
              let s = Hashtbl.create 8 in
              Hashtbl.replace t.label_values (name, key) s;
              s
        in
        if Hashtbl.mem seen v then pair
        else if Hashtbl.length seen < k then begin
          Hashtbl.add seen v ();
          pair
        end
        else begin
          folded := true;
          (key, other)
        end)
    labels

(* The installed registry. A single mutable slot, exactly like
   Trace's: the disabled case is one load-and-compare per probe site.
   The slot only selects the sink; all values and sample times come
   from the simulation itself, so determinism is unaffected.

   Like Trace, the slot is domain-local (Domain.DLS), not a
   process-global ref: each domain of a parallel campaign
   (Experiments.Sweep) installs its own registry, so concurrent
   independent runs never share instruments. A process-global ref here
   would let one domain's install clobber every other domain's probe
   sites mid-run (demonstrated by test_sweep's seeded-bug test). *)
let slot : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* How many domains currently have a registry installed. [on] is the
   single hottest probe in the tree (every counter bump and trace site
   asks it first), and a Domain.DLS.get is an out-of-line call. With
   this cross-domain count the nothing-installed case — every
   benchmark hot path — is one atomic load; only domains that might
   actually observe something pay for the DLS read. *)
let installed_domains = Atomic.make 0

let install t =
  (match Domain.DLS.get slot with
  | None -> Atomic.incr installed_domains
  | Some _ -> ());
  Domain.DLS.set slot (Some t)

let uninstall () =
  match Domain.DLS.get slot with
  | None -> ()
  | Some _ ->
      Atomic.decr installed_domains;
      Domain.DLS.set slot None

let current () = Domain.DLS.get slot

(* snfs-hot *)
let on () =
  Atomic.get installed_domains > 0
  && match Domain.DLS.get slot with None -> false | Some _ -> true

let installed () = Domain.DLS.get slot

let with_metrics t f =
  install t;
  Fun.protect ~finally:uninstall f

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Poll _ -> "polled gauge"
  | Hist _ -> "histogram"

let find_or_add_raw t name labels make =
  let key = (name, norm labels) in
  match Hashtbl.find_opt t.tbl key with
  | Some i -> i
  | None ->
      let i = make () in
      Hashtbl.replace t.tbl key i;
      t.order <- key :: t.order;
      i

(* the no-budget case — every probe site with metrics on but no
   budget configured — must not pay for folding *)
let find_or_add t name labels make =
  match t.label_budget with
  | None -> find_or_add_raw t name labels make
  | Some k ->
      let folded = ref false in
      find_or_add_raw t name (fold_labels t name labels k folded) make

let clash name i want =
  invalid_arg
    (Printf.sprintf "Metrics: %s is a %s, not a %s" name (kind_name i) want)

let incr ?(labels = []) ?(n = 1) name =
  match current () with
  | None -> ()
  | Some t -> (
      match find_or_add t name labels (fun () -> Counter { c = 0 }) with
      | Counter c -> c.c <- c.c + n
      | i -> clash name i "counter")

let set ?(labels = []) name v =
  match current () with
  | None -> ()
  | Some t -> (
      match find_or_add t name labels (fun () -> Gauge { g = 0.0 }) with
      | Gauge g -> g.g <- v
      | i -> clash name i "gauge")

let add ?(labels = []) name v =
  match current () with
  | None -> ()
  | Some t -> (
      match find_or_add t name labels (fun () -> Gauge { g = 0.0 }) with
      | Gauge g -> g.g <- g.g +. v
      | i -> clash name i "gauge")

let hist_of t name labels =
  match
    find_or_add t name labels (fun () -> Hist (Stats.Histogram.create name))
  with
  | Hist h -> h
  | i -> clash name i "histogram"

let observe ?(labels = []) name v =
  match current () with
  | None -> ()
  | Some t -> Stats.Histogram.add (hist_of t name labels) v

let register_poll ?(labels = []) ?(cumulative = false) name f =
  match current () with
  | None -> ()
  | Some t -> (
      let folded = ref false in
      let labels =
        match t.label_budget with
        | None -> labels
        | Some k -> fold_labels t name labels k folded
      in
      match
        find_or_add_raw t name labels (fun () -> Poll { f; cumulative })
      with
      | Poll p ->
          if !folded && p.f != f then begin
            (* distinct sources folded onto one "other" series report
               their sum, not whichever registered last *)
            let prev = p.f in
            p.f <- (fun () -> prev () +. f ())
          end
          else p.f <- f (* last registration wins *)
      | i -> clash name i "polled gauge")

(* ---- reading ---- *)

let lookup t name labels = Hashtbl.find_opt t.tbl (name, norm labels)

let counter_value t ?(labels = []) name =
  match lookup t name labels with Some (Counter c) -> c.c | _ -> 0

let gauge_value t ?(labels = []) name =
  match lookup t name labels with
  | Some (Gauge g) -> g.g
  | Some (Poll p) -> p.f ()
  | _ -> 0.0

let sorted_keys t = List.sort compare t.order
let series_count t = List.length t.order

let counters_with t name =
  List.filter_map
    (fun (n, labels) ->
      if String.equal n name then
        match Hashtbl.find_opt t.tbl (n, labels) with
        | Some (Counter c) -> Some (labels, c.c)
        | _ -> None
      else None)
    (sorted_keys t)

let histogram t ?(labels = []) name = hist_of t name labels

(* ---- sampling ---- *)

let start_sampling t ~origin ~interval =
  if interval <= 0.0 then
    invalid_arg "Metrics.start_sampling: interval must be > 0";
  let baselines = Hashtbl.create 64 in
  (* baseline = value at sampling start, so the first bin holds only
     progress made after [origin] *)
  List.iter
    (fun ((_, _) as key) ->
      match Hashtbl.find_opt t.tbl key with
      | Some (Counter c) -> Hashtbl.replace baselines key (float_of_int c.c)
      | Some (Poll p) when p.cumulative -> Hashtbl.replace baselines key (p.f ())
      | Some (Gauge _ | Poll _ | Hist _) | None -> ())
    t.order;
  t.sampling <- Some { origin; interval; baselines; series = Hashtbl.create 64 }

let sampling_active t = t.sampling <> None

let sample t ~now =
  match t.sampling with
  | None -> ()
  | Some s ->
      (* attribute the sample to the middle of the interval that just
         ended: a sample taken exactly at a bin edge belongs to the bin
         before the edge, not after it *)
      let rel = Float.max 0.0 (now -. s.origin -. (s.interval /. 2.0)) in
      let record key v =
        let ts =
          match Hashtbl.find_opt s.series key with
          | Some ts -> ts
          | None ->
              let ts = Stats.Timeseries.create ~bin:s.interval (fst key) in
              Hashtbl.replace s.series key ts;
              ts
        in
        Stats.Timeseries.add ts ~time:rel v
      in
      let delta key cur =
        let base =
          match Hashtbl.find_opt s.baselines key with
          | Some b -> b
          | None -> 0.0 (* instrument born after sampling started *)
        in
        Hashtbl.replace s.baselines key cur;
        cur -. base
      in
      List.iter
        (fun key ->
          match Hashtbl.find_opt t.tbl key with
          | Some (Counter c) -> record key (delta key (float_of_int c.c))
          | Some (Gauge g) -> record key g.g
          | Some (Poll p) ->
              let cur = p.f () in
              record key (if p.cumulative then delta key cur else cur)
          | Some (Hist _) | None -> ())
        (sorted_keys t)

let series t name =
  match t.sampling with
  | None -> []
  | Some s ->
      List.filter_map
        (fun ((n, labels) as key) ->
          if String.equal n name then
            Option.map (fun ts -> (labels, ts)) (Hashtbl.find_opt s.series key)
          else None)
        (sorted_keys t)

(* ---- export ---- *)

let float_str v =
  (* fixed conversion; inputs are deterministic, so so is the text *)
  Printf.sprintf "%.9g" v

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_labels labels =
  match labels with
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
      ^ "}"

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let keys = sorted_keys t in
  let typed = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun ((name, labels) as key) ->
      match Hashtbl.find_opt t.tbl key with
      | None -> ()
      | Some (Counter c) ->
          type_line name "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %d\n" name (prom_labels labels) c.c)
      | Some (Gauge g) ->
          type_line name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (prom_labels labels)
               (float_str g.g))
      | Some (Poll p) ->
          type_line name "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" name (prom_labels labels)
               (float_str (p.f ())))
      | Some (Hist h) ->
          type_line name "summary";
          let q p = norm (("quantile", Printf.sprintf "%g" (p /. 100.)) :: labels) in
          List.iter
            (fun p ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name
                   (prom_labels (q p))
                   (float_str (Stats.Histogram.percentile h p))))
            [ 50.0; 90.0; 99.0 ];
          let n = Stats.Histogram.count h in
          let sum = Stats.Histogram.mean h *. float_of_int n in
          Buffer.add_string buf
            (Printf.sprintf "%s_sum%s %s\n" name (prom_labels labels)
               (float_str sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count%s %d\n" name (prom_labels labels) n))
    keys;
  Buffer.contents buf

let series_id name labels =
  match labels with
  | [] -> name
  | labels ->
      name ^ "{"
      ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
      ^ "}"

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "series,time,value\n";
  (match t.sampling with
  | None -> ()
  | Some s ->
      List.iter
        (fun ((name, labels) as key) ->
          match Hashtbl.find_opt s.series key with
          | None -> ()
          | Some ts ->
              List.iter
                (fun (time, v) ->
                  (* the series field is quoted: label lists contain
                     commas *)
                  Buffer.add_string buf
                    (Printf.sprintf "\"%s\",%s,%s\n" (series_id name labels)
                       (float_str time) (float_str v)))
                (Stats.Timeseries.to_list ts))
        (sorted_keys t));
  Buffer.contents buf

let report ?latency t =
  let keys = sorted_keys t in
  let buf = Buffer.create 1024 in
  let counters =
    List.filter_map
      (fun ((name, labels) as key) ->
        match Hashtbl.find_opt t.tbl key with
        | Some (Counter c) ->
            Some [ series_id name labels; string_of_int c.c ]
        | _ -> None)
      keys
  in
  let gauges =
    List.filter_map
      (fun ((name, labels) as key) ->
        match Hashtbl.find_opt t.tbl key with
        | Some (Gauge g) -> Some [ series_id name labels; float_str g.g ]
        | Some (Poll p) -> Some [ series_id name labels; float_str (p.f ()) ]
        | _ -> None)
      keys
  in
  let hists =
    List.filter_map
      (fun ((name, labels) as key) ->
        match Hashtbl.find_opt t.tbl key with
        | Some (Hist h) ->
            Some
              (Printf.sprintf "%s: %s" (series_id name labels)
                 (Stats.Histogram.summary h))
        | _ -> None)
      keys
  in
  if counters <> [] then begin
    Buffer.add_string buf "== counters ==\n";
    Buffer.add_string buf
      (Stats.Table.render ~header:[ "metric"; "value" ] counters);
    Buffer.add_char buf '\n'
  end;
  if gauges <> [] then begin
    Buffer.add_string buf "== gauges ==\n";
    Buffer.add_string buf
      (Stats.Table.render ~header:[ "metric"; "value" ] gauges);
    Buffer.add_char buf '\n'
  end;
  if hists <> [] then begin
    Buffer.add_string buf "== histograms ==\n";
    List.iter
      (fun line ->
        Buffer.add_string buf line;
        Buffer.add_char buf '\n')
      hists;
    Buffer.add_char buf '\n'
  end;
  (match latency with
  | Some l when not (Latency.is_empty l) ->
      Buffer.add_string buf "== rpc latency ==\n";
      Buffer.add_string buf (Latency.table l)
  | Some _ | None -> ());
  Buffer.contents buf
