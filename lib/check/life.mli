(** Bounded exhaustive checker for the {!Spritely.Lifecycle} client
    state machine (Active -> Courtesy -> Expirable -> reaped).

    Enumerates every sequence of lifecycle operations up to a depth
    bound over a tiny client universe, advancing time in unit steps,
    and checks the implementation after each operation against a pure
    reference model plus three named invariants:

    - {b expirable-only-on-conflict}: a client observed [Expirable]
      must have been promoted by [note_conflict] from [Courtesy] —
      never by [demote] or by time;
    - {b courtesy-cannot-linger-past-lifetime}: every [Courtesy] client
      demoted at least a courtesy lifetime ago appears in [due];
    - {b reclaim-idempotence}: [due] is read-only (two reads agree),
      reaping everything due leaves nothing due, and double-[forget]
      is harmless.

    A deterministic random phase (seeded {!Sim.Rand}) extends coverage
    to longer sequences than the exhaustive bound.

    Like {!Explore}, the checker is a functor so the negative suite can
    instantiate it over deliberately-buggy wrappers and prove each
    invariant bites. *)

(** The slice of {!Spritely.Lifecycle} the checker drives. *)
module type LIFE = sig
  type t

  val create : ?courtesy_lifetime:float -> unit -> t
  val state : t -> client:int -> Spritely.Lifecycle.state
  val demote : t -> client:int -> now:float -> bool
  val note_conflict : t -> client:int -> bool
  val revive : t -> client:int -> bool
  val due : t -> now:float -> (int * Spritely.Lifecycle.state) list
  val to_list : t -> (int * Spritely.Lifecycle.state * float) list
  val forget : t -> client:int -> unit
  val copy : t -> t
end

(** One lifecycle operation. [Tick] advances time by one step (the
    courtesy lifetime is {!lifetime_steps} steps); [Scan] is a full
    laundromat pass: read [due] (twice), check it, reap it. *)
type op = Demote of int | Conflict of int | Revive of int | Tick | Scan

val op_to_string : op -> string

(** Courtesy lifetime used by the checker, in [Tick] steps. *)
(* snfs-lint: allow interface-drift — checker parameter readback, documents what a counterexample path means *)
val lifetime_steps : int

type violation = {
  v_inv : string;  (** invariant name, or ["exception"] *)
  v_path : op list;  (** op sequence reaching the violation *)
  v_detail : string;
}

val violation_to_string : violation -> string

module Make (L : LIFE) : sig
  (** Replay one op sequence from a fresh table, returning the first
      violation. The qcheck property surface. *)
  val replay : ?clients:int -> op list -> violation option

  (** Exhaustive DFS over all op sequences of length [depth] (default
      5) over [clients] (default 2) clients, then [random_runs]
      (default 200) seeded random sequences of length [random_depth]
      (default 20). Returns the first violation found, and the number
      of operations checked. *)
  val run :
    ?clients:int ->
    ?depth:int ->
    ?random_runs:int ->
    ?random_depth:int ->
    ?seed:int64 ->
    unit ->
    violation option * int
end

(** The checker over the real {!Spritely.Lifecycle}. *)
module Lifecycle_checker : sig
  val replay : ?clients:int -> op list -> violation option

  val run :
    ?clients:int ->
    ?depth:int ->
    ?random_runs:int ->
    ?random_depth:int ->
    ?seed:int64 ->
    unit ->
    violation option * int
end
