(** Application context: the mounts a simulated program sees plus the
    host whose CPU its computation occupies.

    Charging "think time" to the client CPU is what creates the
    compute/I-O overlap that delayed writes exploit (Section 2.3 of the
    paper): while the application computes, write-backs proceed in
    parallel. *)

type t = {
  mounts : Vfs.Mount.t;
  host : Netsim.Net.Host.t;
  engine : Sim.Engine.t;
}

val make : mounts:Vfs.Mount.t -> host:Netsim.Net.Host.t -> t

(** Charge [seconds] of computation to the application's CPU. *)
val think : t -> float -> unit

(** Current virtual time. *)
val now : t -> float

(** [timed ctx fn] runs [fn] and returns (elapsed virtual seconds,
    result). *)
val timed : t -> (unit -> 'a) -> float * 'a
