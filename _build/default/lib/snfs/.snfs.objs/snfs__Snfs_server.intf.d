lib/snfs/snfs_server.mli: Localfs Netsim Nfs Spritely Stats
