type t = int

let valid_for_open ~cached ~latest ~previous ~write =
  match cached with
  | None -> false
  | Some v -> v = latest || (write && v = previous)
