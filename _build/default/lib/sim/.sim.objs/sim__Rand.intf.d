lib/sim/rand.mli:
