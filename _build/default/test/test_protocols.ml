(* End-to-end integration tests: NFS, SNFS, and RFS clients and servers
   over the simulated network, exercised through the GFS system-call
   layer. Covers basic correctness on every protocol, the consistency
   differences the paper is about, callbacks, write-aversion, and crash
   recovery. *)

let run_sim f =
  let e = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn e ~name:"test-main" (fun () ->
      result := Some (f e);
      Sim.Engine.stop e);
  Sim.Engine.run e;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation main process did not complete"

type world = {
  engine : Sim.Engine.t;
  net : Netsim.Net.t;
  rpc : Netsim.Rpc.t;
  server_host : Netsim.Net.Host.t;
  server_fs : Localfs.t;
  server_disk : Diskm.Disk.t;
  nfs_server : Nfs.Nfs_server.t;
  snfs_server : Snfs.Snfs_server.t;
  rfs_server : Rfs.Rfs_server.t;
  kent_server : Kentfs.Kent_server.t;
}

let make_world e =
  let net = Netsim.Net.create e () in
  let rpc = Netsim.Rpc.create net () in
  let server_host = Netsim.Net.Host.create net "server" in
  let server_disk = Diskm.Disk.create e "server-disk" in
  let server_fs =
    Localfs.create e ~name:"srvfs" ~disk:server_disk ~cache_blocks:896
      ~meta_policy:`Sync ()
  in
  let nfs_server = Nfs.Nfs_server.serve rpc server_host ~fsid:1 server_fs in
  let snfs_server = Snfs.Snfs_server.serve rpc server_host ~fsid:2 server_fs in
  let rfs_server = Rfs.Rfs_server.serve rpc server_host ~fsid:3 server_fs in
  let kent_server = Kentfs.Kent_server.serve rpc server_host ~fsid:4 server_fs in
  {
    engine = e;
    net;
    rpc;
    server_host;
    server_fs;
    server_disk;
    nfs_server;
    snfs_server;
    rfs_server;
    kent_server;
  }

module Nfs_setup = struct
  let get w = w.nfs_server
end

module Snfs_setup = struct
  let get w = w.snfs_server
end

module Rfs_setup = struct
  let get w = w.rfs_server
end

module Kent_setup = struct
  let get w = w.kent_server
end

(* one client host with the protocol under test mounted at / *)
let nfs_client ?config w name =
  let host = Netsim.Net.Host.create w.net name in
  let server = Nfs_setup.get w in
  let client =
    Nfs.Nfs_client.mount w.rpc ~client:host ~server:w.server_host
      ~root:(Nfs.Nfs_server.root_fh server) ?config ~name ()
  in
  let mounts = Vfs.Mount.create () in
  Vfs.Mount.mount mounts ~at:"/" (Nfs.Nfs_client.fs client);
  (host, client, mounts)

let snfs_client ?config w name =
  let host = Netsim.Net.Host.create w.net name in
  let server = Snfs_setup.get w in
  let client =
    Snfs.Snfs_client.mount w.rpc ~client:host ~server:w.server_host
      ~root:(Snfs.Snfs_server.root_fh server) ?config ~name ()
  in
  let mounts = Vfs.Mount.create () in
  Vfs.Mount.mount mounts ~at:"/" (Snfs.Snfs_client.fs client);
  (host, client, mounts)

let rfs_client ?config w name =
  let host = Netsim.Net.Host.create w.net name in
  let server = Rfs_setup.get w in
  let client =
    Rfs.Rfs_client.mount w.rpc ~client:host ~server:w.server_host
      ~root:(Rfs.Rfs_server.root_fh server) ?config ~name ()
  in
  let mounts = Vfs.Mount.create () in
  Vfs.Mount.mount mounts ~at:"/" (Rfs.Rfs_client.fs client);
  (host, client, mounts)

let kent_client ?config w name =
  let host = Netsim.Net.Host.create w.net name in
  let server = Kent_setup.get w in
  let client =
    Kentfs.Kent_client.mount w.rpc ~client:host ~server:w.server_host
      ~root:(Kentfs.Kent_server.root_fh server) ?config ~name ()
  in
  let mounts = Vfs.Mount.create () in
  Vfs.Mount.mount mounts ~at:"/" (Kentfs.Kent_client.fs client);
  (host, client, mounts)

(* ---- generic protocol conformance, run against all three ---- *)

let basic_ops_roundtrip make_mounts () =
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m = make_mounts w "c1" in
      Vfs.Fileio.mkdir m "/src";
      let stamp = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m "/src/a.c" in
      ignore (Vfs.Fileio.write ~stamp fd ~len:10000);
      Vfs.Fileio.close fd;
      (* read it back through the same client *)
      let fd = Vfs.Fileio.openf m "/src/a.c" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd ~len:20000 in
      Vfs.Fileio.close fd;
      let bytes = List.fold_left (fun a (_, n) -> a + n) 0 observed in
      Alcotest.(check int) "all bytes read" 10000 bytes;
      List.iter
        (fun (s, _) -> Alcotest.(check int) "right content" stamp s)
        observed;
      (* namespace ops *)
      let names = Vfs.Fileio.readdir m "/src" in
      Alcotest.(check (list string)) "readdir" [ "a.c" ] names;
      let attrs = Vfs.Fileio.stat m "/src/a.c" in
      Alcotest.(check int) "size" 10000 attrs.Localfs.size;
      Vfs.Fileio.rename m ~src:"/src/a.c" ~dst:"/src/b.c";
      Alcotest.(check bool) "renamed" true (Vfs.Fileio.exists m "/src/b.c");
      Vfs.Fileio.unlink m "/src/b.c";
      Alcotest.(check bool) "gone" false (Vfs.Fileio.exists m "/src/b.c"))

let sequential_write_sharing make_mounts () =
  (* writer closes before reader opens: every protocol must provide
     consistency here (Section 2.3 "sequential write-sharing") *)
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m1 = make_mounts w "c1" in
      let _, _, m2 = make_mounts w "c2" in
      let stamp1 = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/shared" in
      ignore (Vfs.Fileio.write ~stamp:stamp1 fd ~len:8192);
      Vfs.Fileio.close fd;
      (* client 2 reads *)
      let fd = Vfs.Fileio.openf m2 "/shared" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd ~len:8192 in
      Vfs.Fileio.close fd;
      List.iter
        (fun (s, _) -> Alcotest.(check int) "client2 sees client1's data" stamp1 s)
        observed;
      (* client 1 overwrites; client 2 re-opens and must see new data *)
      let stamp2 = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/shared" in
      ignore (Vfs.Fileio.write ~stamp:stamp2 fd ~len:8192);
      Vfs.Fileio.close fd;
      Sim.Engine.sleep e 1.0;
      let fd = Vfs.Fileio.openf m2 "/shared" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd ~len:8192 in
      Vfs.Fileio.close fd;
      List.iter
        (fun (s, _) ->
          Alcotest.(check int) "client2 sees overwritten data" stamp2 s)
        observed)

(* ---- protocol-specific behaviour ---- *)

let test_nfs_stale_read_under_concurrent_sharing () =
  (* concurrent write-sharing with a long attribute-cache timeout:
     unmodified NFS serves stale data (Section 2.1) *)
  run_sim (fun e ->
      let w = make_world e in
      let slow_probe =
        { Nfs.Nfs_client.default_config with attr_min = 30.0; attr_max = 60.0 }
      in
      let _, _, m1 = nfs_client ~config:slow_probe w "c1" in
      let _, _, m2 = nfs_client ~config:slow_probe w "c2" in
      let stamp1 = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/f" in
      ignore (Vfs.Fileio.write ~stamp:stamp1 fd ~len:4096);
      Vfs.Fileio.close fd;
      (* reader opens and holds the file open, caching block 0 *)
      let rfd = Vfs.Fileio.openf m2 "/f" Vfs.Fs.Read_only in
      ignore (Vfs.Fileio.read rfd ~len:4096);
      (* writer updates while the reader still has it open *)
      let stamp2 = Vfs.Stamp.fresh () in
      let wfd = Vfs.Fileio.openf m1 "/f" Vfs.Fs.Write_only in
      ignore (Vfs.Fileio.write ~stamp:stamp2 wfd ~len:4096);
      Vfs.Fileio.close wfd;
      Sim.Engine.sleep e 2.0;
      (* reader re-reads its cached block through the fd it holds open:
         no lookup, no fresh attributes, so the data is STALE *)
      Vfs.Fileio.seek rfd 0;
      let observed = Vfs.Fileio.read rfd ~len:4096 in
      Vfs.Fileio.close rfd;
      (match observed with
      | (s, _) :: _ ->
          Alcotest.(check int) "NFS reader sees stale data" stamp1 s
      | [] -> Alcotest.fail "no data");
      ignore w)

let test_snfs_consistent_under_concurrent_sharing () =
  (* same scenario under SNFS: the second open triggers a callback and
     disables caching, so the reader sees fresh data *)
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m1 = snfs_client w "c1" in
      let _, c2, m2 = snfs_client w "c2" in
      let stamp1 = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/f" in
      ignore (Vfs.Fileio.write ~stamp:stamp1 fd ~len:4096);
      Vfs.Fileio.close fd;
      let rfd = Vfs.Fileio.openf m2 "/f" Vfs.Fs.Read_only in
      ignore (Vfs.Fileio.read rfd ~len:4096);
      (* client 1 opens for write: write-sharing begins; client 2 gets
         an invalidate callback *)
      let stamp2 = Vfs.Stamp.fresh () in
      let wfd = Vfs.Fileio.openf m1 "/f" Vfs.Fs.Write_only in
      ignore (Vfs.Fileio.write ~stamp:stamp2 wfd ~len:4096);
      (* reader reads again while the writer still has it open: every
         read now goes to the server, where the write-through landed *)
      Sim.Engine.sleep e 0.5;
      let observed = ref [] in
      let fd2 = Vfs.Fileio.openf m2 "/f" Vfs.Fs.Read_only in
      observed := Vfs.Fileio.read fd2 ~len:4096;
      Vfs.Fileio.close fd2;
      (match !observed with
      | (s, _) :: _ ->
          Alcotest.(check int) "SNFS reader sees fresh data" stamp2 s
      | [] -> Alcotest.fail "no data");
      Alcotest.(check bool) "callback was served" true
        (Snfs.Snfs_client.callbacks_served c2 > 0);
      Vfs.Fileio.close wfd;
      Vfs.Fileio.close rfd)

let test_rfs_invalidate_on_write () =
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m1 = rfs_client w "c1" in
      let _, c2, m2 = rfs_client w "c2" in
      let stamp1 = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/f" in
      ignore (Vfs.Fileio.write ~stamp:stamp1 fd ~len:4096);
      Vfs.Fileio.close fd;
      let rfd = Vfs.Fileio.openf m2 "/f" Vfs.Fs.Read_only in
      ignore (Vfs.Fileio.read rfd ~len:4096);
      Vfs.Fileio.close rfd;
      (* writer writes through; the server invalidates reader's cache *)
      let stamp2 = Vfs.Stamp.fresh () in
      let wfd = Vfs.Fileio.openf m1 "/f" Vfs.Fs.Write_only in
      ignore (Vfs.Fileio.write ~stamp:stamp2 wfd ~len:4096);
      Vfs.Fileio.close wfd;
      Sim.Engine.sleep e 1.0;
      Alcotest.(check bool) "invalidation delivered" true
        (Rfs.Rfs_client.invalidations_served c2 > 0);
      let fd2 = Vfs.Fileio.openf m2 "/f" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd2 ~len:4096 in
      Vfs.Fileio.close fd2;
      (match observed with
      | (s, _) :: _ -> Alcotest.(check int) "fresh after invalidate" stamp2 s
      | [] -> Alcotest.fail "no data"))

let test_snfs_write_aversion () =
  (* temporary file deleted before any write-back: no data ever reaches
     the server (Section 5.4) *)
  run_sim (fun e ->
      let w = make_world e in
      let _, client, m = snfs_client w "c1" in
      let server = Snfs_setup.get w in
      let writes_before =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "write"
      in
      let fd = Vfs.Fileio.creat m "/tmpfile" in
      ignore (Vfs.Fileio.write fd ~len:65536);
      Vfs.Fileio.close fd;
      Sim.Engine.sleep e 2.0;
      Vfs.Fileio.unlink m "/tmpfile";
      Sim.Engine.sleep e 60.0;
      let writes_after =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "write"
      in
      Alcotest.(check int) "no write RPCs at all" writes_before writes_after;
      Alcotest.(check bool) "writes averted counted" true
        (Blockcache.Cache.writes_averted (Snfs.Snfs_client.cache client) >= 16))

let test_nfs_cannot_avert_writes () =
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m = nfs_client w "c1" in
      let server = Nfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/tmpfile" in
      ignore (Vfs.Fileio.write fd ~len:65536);
      Vfs.Fileio.close fd;
      Vfs.Fileio.unlink m "/tmpfile";
      let writes =
        Stats.Counter.get (Nfs.Nfs_server.counters server) "write"
      in
      Alcotest.(check int) "all 16 blocks written through" 16 writes)

let test_snfs_syncer_writes_back () =
  run_sim (fun e ->
      let w = make_world e in
      let _, client, m = snfs_client w "c1" in
      Snfs.Snfs_client.start_syncer client ~interval:30.0;
      let server = Snfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/data" in
      ignore (Vfs.Fileio.write fd ~len:16384);
      Vfs.Fileio.close fd;
      Alcotest.(check int) "nothing written yet" 0
        (Stats.Counter.get (Snfs.Snfs_server.counters server) "write");
      Sim.Engine.sleep e 45.0;
      Alcotest.(check int) "syncer pushed all 4 blocks" 4
        (Stats.Counter.get (Snfs.Snfs_server.counters server) "write"))

let test_snfs_closed_dirty_callback_on_other_reader () =
  (* writer closes leaving dirty blocks; when another client opens, the
     server calls the last writer back and the reader sees the data *)
  run_sim (fun e ->
      let w = make_world e in
      let _, c1, m1 = snfs_client w "c1" in
      let _, _, m2 = snfs_client w "c2" in
      let server = Snfs_setup.get w in
      let stamp = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/dirtyfile" in
      ignore (Vfs.Fileio.write ~stamp fd ~len:8192);
      Vfs.Fileio.close fd;
      (* dirty blocks still at client 1 *)
      Alcotest.(check int) "dirty at client" 2
        (Blockcache.Cache.dirty_count (Snfs.Snfs_client.cache c1)
           ~file:(Vfs.Fileio.stat m1 "/dirtyfile").Localfs.ino);
      let fd2 = Vfs.Fileio.openf m2 "/dirtyfile" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd2 ~len:8192 in
      Vfs.Fileio.close fd2;
      (match observed with
      | (s, _) :: _ -> Alcotest.(check int) "reader got written-back data" stamp s
      | [] -> Alcotest.fail "no data");
      Alcotest.(check bool) "server issued a callback" true
        (Snfs.Snfs_server.callbacks_sent server > 0))

let test_snfs_version_revalidation_avoids_rereads () =
  (* close then reopen: cache revalidates by version, no data re-read *)
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m = snfs_client w "c1" in
      let server = Snfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/f" in
      ignore (Vfs.Fileio.write fd ~len:16384);
      Vfs.Fileio.close fd;
      let reads_before =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "read"
      in
      ignore (Vfs.Fileio.read_file m "/f");
      let reads_after =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "read"
      in
      Alcotest.(check int) "no read RPCs on reopen" reads_before reads_after)

let test_nfs_bug_forces_rereads () =
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m = nfs_client w "c1" in
      let server = Nfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/f" in
      ignore (Vfs.Fileio.write fd ~len:16384);
      Vfs.Fileio.close fd;
      let reads_before =
        Stats.Counter.get (Nfs.Nfs_server.counters server) "read"
      in
      ignore (Vfs.Fileio.read_file m "/f");
      let reads_after =
        Stats.Counter.get (Nfs.Nfs_server.counters server) "read"
      in
      Alcotest.(check bool) "invalidate-on-close forces re-reads" true
        (reads_after - reads_before >= 4))

let test_nfs_fixed_client_keeps_cache () =
  run_sim (fun e ->
      let w = make_world e in
      let fixed =
        { Nfs.Nfs_client.default_config with invalidate_on_close = false }
      in
      let _, _, m = nfs_client ~config:fixed w "c1" in
      let server = Nfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/f" in
      ignore (Vfs.Fileio.write fd ~len:16384);
      Vfs.Fileio.close fd;
      let reads_before =
        Stats.Counter.get (Nfs.Nfs_server.counters server) "read"
      in
      ignore (Vfs.Fileio.read_file m "/f");
      let reads_after =
        Stats.Counter.get (Nfs.Nfs_server.counters server) "read"
      in
      Alcotest.(check int) "fixed client reads from cache" reads_before
        reads_after)

let test_snfs_delayed_close () =
  run_sim (fun e ->
      let w = make_world e in
      let config =
        {
          Snfs.Snfs_client.default_config with
          delayed_close = true;
          delayed_close_timeout = 60.0;
        }
      in
      let _, client, m = snfs_client ~config w "c1" in
      let server = Snfs_setup.get w in
      let fd = Vfs.Fileio.creat m "/header.h" in
      ignore (Vfs.Fileio.write fd ~len:4096);
      Vfs.Fileio.close fd;
      let opens_before =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "open"
      in
      (* reopen the file repeatedly, same mode pattern *)
      for _ = 1 to 5 do
        let fd = Vfs.Fileio.openf m "/header.h" Vfs.Fs.Write_only in
        ignore (Vfs.Fileio.write fd ~len:100);
        Vfs.Fileio.close fd
      done;
      let opens_after =
        Stats.Counter.get (Snfs.Snfs_server.counters server) "open"
      in
      Alcotest.(check int) "no open RPCs for reopens" opens_before opens_after;
      Alcotest.(check int) "all served locally" 5
        (Snfs.Snfs_client.delayed_close_hits client);
      (* the idle timer eventually sends the close *)
      Sim.Engine.sleep e 120.0;
      Alcotest.(check bool) "spontaneous close arrived" true
        (Stats.Counter.get (Snfs.Snfs_server.counters server) "close" > 0))

let test_snfs_crash_recovery () =
  run_sim (fun e ->
      let w = make_world e in
      let _, c1, m1 = snfs_client w "c1" in
      let _, c2, m2 = snfs_client w "c2" in
      let server = Snfs_setup.get w in
      (* build interesting state: c1 writes (open), c2 reads another *)
      ignore (Vfs.Fileio.creat m1 "/a" |> fun fd ->
              ignore (Vfs.Fileio.write fd ~len:4096);
              Vfs.Fileio.close fd);
      ignore (Vfs.Fileio.creat m2 "/b" |> fun fd ->
              ignore (Vfs.Fileio.write fd ~len:4096);
              Vfs.Fileio.close fd);
      let fd_a = Vfs.Fileio.openf m1 "/a" Vfs.Fs.Read_write in
      ignore (Vfs.Fileio.write fd_a ~len:4096);
      let fd_b = Vfs.Fileio.openf m2 "/b" Vfs.Fs.Read_only in
      let table_before =
        Spritely.State_table.to_reports (Snfs.Snfs_server.state_table server)
      in
      Alcotest.(check bool) "server holds state" true
        (List.length table_before > 0);
      (* crash and reboot the server; clients replay their state *)
      Netsim.Net.Host.crash w.server_host;
      Sim.Engine.sleep e 5.0;
      Netsim.Net.Host.reboot w.server_host;
      (* a call from a client triggers the service restart hook that
         clears the table; then clients re-send their opens *)
      Snfs.Snfs_client.recover_now c1;
      Snfs.Snfs_client.recover_now c2;
      let table_after =
        Spritely.State_table.to_reports (Snfs.Snfs_server.state_table server)
      in
      (* the rebuilt table holds the same open state *)
      let open_state reports =
        List.filter_map
          (fun (r : Spritely.State_table.client_report) ->
            if r.r_readers > 0 || r.r_writers > 0 then
              Some (r.r_client, r.r_file, r.r_readers, r.r_writers)
            else None)
          reports
        |> List.sort compare
      in
      Alcotest.(check bool) "open state reconstructed" true
        (open_state table_before = open_state table_after);
      (* and the system still works *)
      ignore (Vfs.Fileio.write fd_a ~len:4096);
      Vfs.Fileio.close fd_a;
      Vfs.Fileio.close fd_b)

let test_snfs_dead_client_callback () =
  (* a client holding dirty blocks crashes; an open by another client
     times out the callback, forgets the dead client, and proceeds *)
  run_sim (fun e ->
      let w = make_world e in
      let h1, _, m1 = snfs_client w "c1" in
      let _, _, m2 = snfs_client w "c2" in
      let server = Snfs_setup.get w in
      let fd = Vfs.Fileio.creat m1 "/doomed" in
      ignore (Vfs.Fileio.write fd ~len:8192);
      Vfs.Fileio.close fd;
      Netsim.Net.Host.crash h1;
      (* client 2 opens: the callback to c1 fails, but the open succeeds *)
      let fd2 = Vfs.Fileio.openf m2 "/doomed" Vfs.Fs.Read_only in
      let observed = Vfs.Fileio.read fd2 ~len:8192 in
      Vfs.Fileio.close fd2;
      Alcotest.(check bool) "open survived dead client" true
        (List.length observed >= 0);
      Alcotest.(check bool) "callback failure recorded" true
        (Snfs.Snfs_server.callbacks_failed server > 0);
      (* the data the dead client never wrote back is lost; the server
         knows the file may be inconsistent *)
      let attrs = Vfs.Fileio.stat m2 "/doomed" in
      Alcotest.(check bool) "flagged inconsistent" true
        (Spritely.State_table.was_inconsistent
           (Snfs.Snfs_server.state_table server)
           ~file:attrs.Localfs.ino))

let test_snfs_relinquish_reclaims_delayed_closes () =
  (* Section 6.2's worry: delayed-close clients fill the state table
     with apparently-open files. The server's relinquish callback asks
     them to let go, and the blocked open then succeeds. *)
  run_sim (fun e ->
      let w = make_world e in
      (* a dedicated small-table server *)
      let small_fs = w.server_fs in
      let server =
        Snfs.Snfs_server.serve w.rpc w.server_host ~fsid:9
          ~max_table_entries:4 small_fs
      in
      let host = Netsim.Net.Host.create w.net "dc" in
      let client =
        Snfs.Snfs_client.mount w.rpc ~client:host ~server:w.server_host
          ~root:(Snfs.Snfs_server.root_fh server)
          ~config:
            {
              Snfs.Snfs_client.default_config with
              delayed_close = true;
              delayed_close_timeout = 10_000.0 (* never spontaneous *);
            }
          ~name:"dc" ()
      in
      let m = Vfs.Mount.create () in
      Vfs.Mount.mount m ~at:"/" (Snfs.Snfs_client.fs client);
      (* touch enough files that their delayed closes fill the table *)
      for i = 1 to 5 do
        Vfs.Fileio.write_file m (Printf.sprintf "/f%d" i) ~bytes:100
      done;
      (* every write_file is open+close; the closes were withheld, so
         the 5th file needed a relinquish to find a slot — and all five
         writes succeeded *)
      for i = 1 to 5 do
        Alcotest.(check bool)
          (Printf.sprintf "f%d exists" i)
          true
          (Vfs.Fileio.exists m (Printf.sprintf "/f%d" i))
      done;
      let table = Snfs.Snfs_server.state_table server in
      Alcotest.(check bool) "table stayed within bounds" true
        (Spritely.State_table.entry_count table <= 4);
      Alcotest.(check bool) "server issued relinquish callbacks" true
        (Snfs.Snfs_server.callbacks_sent server > 0))

let test_kent_block_granularity_sharing () =
  (* two clients write-share ONE FILE but different blocks: under
     Kent's protocol both keep caching (SNFS would have disabled both
     caches for the whole file) *)
  run_sim (fun e ->
      let w = make_world e in
      let _, c1, m1 = kent_client w "k1" in
      let _, c2, m2 = kent_client w "k2" in
      let server = Kent_setup.get w in
      (* client 1 creates a 4-block file *)
      let fd = Vfs.Fileio.creat m1 "/shared" in
      ignore (Vfs.Fileio.write fd ~len:(4 * 4096));
      Vfs.Fileio.close fd;
      (* both clients open it and write disjoint blocks repeatedly *)
      let fd1 = Vfs.Fileio.openf m1 "/shared" Vfs.Fs.Read_write in
      let fd2 = Vfs.Fileio.openf m2 "/shared" Vfs.Fs.Read_write in
      (* first round: client 2 must acquire block 2 (one RPC, and one
         recall write-back of client 1's dirty copy); client 1 already
         owns block 0 from creating the file *)
      Vfs.Fileio.seek fd1 0;
      ignore (Vfs.Fileio.write fd1 ~len:4096);
      Vfs.Fileio.seek fd2 (2 * 4096);
      ignore (Vfs.Fileio.write fd2 ~len:4096);
      Alcotest.(check int) "client 1 needed no new acquire" 4
        (Kentfs.Kent_client.acquires c1);
      Alcotest.(check int) "client 2 acquired its block once" 1
        (Kentfs.Kent_client.acquires c2);
      (* steady state: both write their own blocks with NO traffic at
         all — this is the case SNFS handles by disabling caching *)
      let writes_before =
        Stats.Counter.get (Kentfs.Kent_server.counters server) "write"
      in
      for _ = 1 to 10 do
        Vfs.Fileio.seek fd1 0;
        ignore (Vfs.Fileio.write fd1 ~len:4096);
        Vfs.Fileio.seek fd2 (2 * 4096);
        ignore (Vfs.Fileio.write fd2 ~len:4096)
      done;
      Alcotest.(check int) "steady state: zero write RPCs" writes_before
        (Stats.Counter.get (Kentfs.Kent_server.counters server) "write");
      Alcotest.(check int) "steady state: no more acquires" 1
        (Kentfs.Kent_client.acquires c2);
      Vfs.Fileio.close fd1;
      Vfs.Fileio.close fd2)

let test_kent_read_recalls_dirty_block () =
  run_sim (fun e ->
      let w = make_world e in
      let _, _, m1 = kent_client w "k1" in
      let _, _, m2 = kent_client w "k2" in
      let server = Kent_setup.get w in
      (* writer holds a dirty owned block *)
      let stamp = Vfs.Stamp.fresh () in
      let fd = Vfs.Fileio.creat m1 "/doc" in
      ignore (Vfs.Fileio.write ~stamp fd ~len:4096);
      Vfs.Fileio.close fd;
      (* a reader on another client: the server recalls the block *)
      let observed = ref [] in
      let fd2 = Vfs.Fileio.openf m2 "/doc" Vfs.Fs.Read_only in
      observed := Vfs.Fileio.read fd2 ~len:4096;
      Vfs.Fileio.close fd2;
      (match !observed with
      | (s, _) :: _ -> Alcotest.(check int) "fresh data via recall" stamp s
      | [] -> Alcotest.fail "no data");
      Alcotest.(check bool) "a recall happened" true
        (Kentfs.Kent_server.recalls_sent server > 0))

let test_snfs_recovery_grace_period () =
  (* Section 2.4: "the consistency state of the file cannot change
     while the server is down, or until the server is willing to allow
     it to change." A rebooted server with a grace period refuses opens
     from unrecovered clients, while recovered clients proceed. *)
  run_sim (fun e ->
      let w = make_world e in
      let server =
        Snfs.Snfs_server.serve w.rpc w.server_host ~fsid:9 ~recovery_grace:20.0
          w.server_fs
      in
      let client_on name =
        let host = Netsim.Net.Host.create w.net name in
        let c =
          Snfs.Snfs_client.mount w.rpc ~client:host ~server:w.server_host
            ~root:(Snfs.Snfs_server.root_fh server) ~name ()
        in
        let m = Vfs.Mount.create () in
        Vfs.Mount.mount m ~at:"/" (Snfs.Snfs_client.fs c);
        (c, m)
      in
      let c1, m1 = client_on "g1" in
      let _c2, m2 = client_on "g2" in
      Vfs.Fileio.write_file m1 "/a" ~bytes:4096;
      Vfs.Fileio.write_file m2 "/b" ~bytes:4096;
      (* server reboots with a 20 s grace period *)
      Netsim.Net.Host.crash w.server_host;
      Sim.Engine.sleep e 2.0;
      Netsim.Net.Host.reboot w.server_host;
      (* client 1 recovers immediately and may work during grace *)
      Snfs.Snfs_client.recover_now c1;
      Alcotest.(check bool) "grace active" true (Snfs.Snfs_server.in_grace server);
      let t0 = Sim.Engine.now e in
      ignore (Vfs.Fileio.read_file m1 "/a");
      Alcotest.(check bool) "recovered client not delayed" true
        (Sim.Engine.now e -. t0 < 5.0);
      (* client 2 has not recovered: its open blocks until grace ends *)
      let t0 = Sim.Engine.now e in
      ignore (Vfs.Fileio.read_file m2 "/b");
      let waited = Sim.Engine.now e -. t0 in
      Alcotest.(check bool)
        (Printf.sprintf "unrecovered client waited (%.1f s)" waited)
        true (waited > 5.0);
      Alcotest.(check bool) "grace over by then" false
        (Snfs.Snfs_server.in_grace server))

let test_snfs_client_reaper () =
  (* a client crashes without any pending callback to expose it; the
     server's keepalive-based reaper notices and reclaims its state *)
  run_sim (fun e ->
      let w = make_world e in
      let server = Snfs_setup.get w in
      Snfs.Snfs_server.start_client_reaper server ~idle:30.0 ~interval:20.0;
      let h1, _, m1 = snfs_client w "c1" in
      let fd = Vfs.Fileio.creat m1 "/held-open" in
      ignore (Vfs.Fileio.write fd ~len:4096);
      (* fd deliberately left open; the client dies silently *)
      let table = Snfs.Snfs_server.state_table server in
      Alcotest.(check int) "state held" 1
        (Spritely.State_table.entry_count table);
      Netsim.Net.Host.crash h1;
      Sim.Engine.sleep e 200.0;
      Alcotest.(check bool) "client reaped" true
        (Snfs.Snfs_server.clients_reaped server > 0);
      Alcotest.(check (list int)) "no open state left" []
        (List.concat_map
           (fun file ->
             List.map (fun (c, _, _) -> c)
               (Spritely.State_table.openers table ~file))
           (Spritely.State_table.files table));
      (* a live-but-quiet client is probed, answers, and is kept *)
      let _, _, m2 = snfs_client w "c2" in
      let fd2 = Vfs.Fileio.openf m2 "/held-open" Vfs.Fs.Read_only in
      Sim.Engine.sleep e 200.0;
      Alcotest.(check int) "live client not reaped" 1
        (Snfs.Snfs_server.clients_reaped server);
      Vfs.Fileio.close fd2)

let () =
  let conformance name make =
    ( name ^ " conformance",
      [
        Alcotest.test_case "basic ops" `Quick (basic_ops_roundtrip make);
        Alcotest.test_case "sequential write sharing" `Quick
          (sequential_write_sharing make);
      ] )
  in
  Alcotest.run "protocols"
    [
      conformance "nfs" (fun w n -> nfs_client w n);
      conformance "snfs" (fun w n -> snfs_client w n);
      conformance "rfs" (fun w n -> rfs_client w n);
      conformance "kent" (fun w n -> kent_client w n);
      ( "consistency",
        [
          Alcotest.test_case "NFS stale concurrent read" `Quick
            test_nfs_stale_read_under_concurrent_sharing;
          Alcotest.test_case "SNFS consistent concurrent read" `Quick
            test_snfs_consistent_under_concurrent_sharing;
          Alcotest.test_case "RFS invalidate on write" `Quick
            test_rfs_invalidate_on_write;
        ] );
      ( "delayed write",
        [
          Alcotest.test_case "SNFS write aversion" `Quick
            test_snfs_write_aversion;
          Alcotest.test_case "NFS cannot avert" `Quick
            test_nfs_cannot_avert_writes;
          Alcotest.test_case "SNFS syncer" `Quick test_snfs_syncer_writes_back;
          Alcotest.test_case "closed-dirty callback" `Quick
            test_snfs_closed_dirty_callback_on_other_reader;
        ] );
      ( "caching",
        [
          Alcotest.test_case "SNFS revalidation" `Quick
            test_snfs_version_revalidation_avoids_rereads;
          Alcotest.test_case "NFS bug re-reads" `Quick test_nfs_bug_forces_rereads;
          Alcotest.test_case "fixed NFS keeps cache" `Quick
            test_nfs_fixed_client_keeps_cache;
          Alcotest.test_case "delayed close" `Quick test_snfs_delayed_close;
        ] );
      ( "kent block protocol",
        [
          Alcotest.test_case "disjoint-block sharing" `Quick
            test_kent_block_granularity_sharing;
          Alcotest.test_case "read recalls dirty block" `Quick
            test_kent_read_recalls_dirty_block;
        ] );
      ( "failures",
        [
          Alcotest.test_case "crash recovery" `Quick test_snfs_crash_recovery;
          Alcotest.test_case "dead client callback" `Quick
            test_snfs_dead_client_callback;
          Alcotest.test_case "client reaper" `Quick test_snfs_client_reaper;
          Alcotest.test_case "relinquish on table full" `Quick
            test_snfs_relinquish_reclaims_delayed_closes;
          Alcotest.test_case "recovery grace period" `Quick
            test_snfs_recovery_grace_period;
        ] );
    ]
