(* Deterministic fault schedules. A plan is a seed-derived list of
   timed fault events; [install] turns each event into a fiber that
   sleeps to its instant and flips the corresponding simulation state
   (host crash/reboot, network partition/heal). Everything downstream
   of the seed is pure splitmix64, so the same seed always produces
   the same schedule and therefore the same simulation. *)

type event =
  | Server_crash of { at : float; down_for : float }
  | Client_crash of { at : float; client : int }
  | Client_partition of { at : float; client : int; heal_after : float }

type t = { seed : int64; events : event list }

let event_time = function
  | Server_crash { at; _ } | Client_crash { at; _ }
  | Client_partition { at; _ } ->
      at

let events t = t.events
let seed t = t.seed

(* The canonical schedule of the crash campaign: the server dies
   mid-benchmark and recovers; later two state-holding clients die
   without closing and one is merely partitioned, healing inside the
   courtesy lifetime. Jitter keeps the instants seed-dependent without
   letting phases overlap (the client-lifecycle story needs the server
   recovery finished first). *)
let generate ~seed ?(clients = 4) () =
  if clients < 4 then invalid_arg "Crashplan.generate: needs >= 4 clients";
  let rand = Sim.Rand.create seed in
  let r lo hi = Sim.Rand.range rand lo hi in
  let server_at = r 38.0 46.0 in
  let server_down = r 6.0 10.0 in
  let crash1 = r 78.0 84.0 in
  let part3 = r 84.0 88.0 in
  let crash2 = r 88.0 94.0 in
  let heal3 = r 205.0 215.0 in
  let events =
    [
      Server_crash { at = server_at; down_for = server_down };
      Client_crash { at = crash1; client = 1 };
      Client_partition { at = part3; client = 3; heal_after = heal3 -. part3 };
      Client_crash { at = crash2; client = 2 };
    ]
  in
  {
    seed;
    events = List.sort (fun a b -> compare (event_time a) (event_time b)) events;
  }

let describe t =
  List.map
    (function
      | Server_crash { at; down_for } ->
          Printf.sprintf "t=%6.2f server crashes, reboots at t=%.2f" at
            (at +. down_for)
      | Client_crash { at; client } ->
          Printf.sprintf "t=%6.2f client%d crashes (no close)" at client
      | Client_partition { at; client; heal_after } ->
          Printf.sprintf "t=%6.2f client%d partitioned, heals at t=%.2f" at
            client (at +. heal_after))
    t.events

let fault_event engine name args =
  if Obs.Trace.on () then
    Obs.Trace.instant
      ~ts:(Sim.Engine.now engine)
      ~cat:"fault" ~name ~track:"faults" ~args ()

let install t engine ~net ~server ~clients =
  List.iter
    (fun ev ->
      match ev with
      | Server_crash { at; down_for } ->
          Sim.Engine.spawn engine ~name:"fault.server-crash" (fun () ->
              Sim.Engine.sleep engine at;
              Netsim.Net.Host.crash server;
              fault_event engine "server_crash" [];
              Sim.Engine.sleep engine down_for;
              Netsim.Net.Host.reboot server;
              fault_event engine "server_reboot"
                [
                  ( "epoch",
                    Obs.Trace.Int (Netsim.Net.Host.boot_epoch server) );
                ])
      | Client_crash { at; client } ->
          Sim.Engine.spawn engine
            ~name:(Printf.sprintf "fault.client%d-crash" client)
            (fun () ->
              Sim.Engine.sleep engine at;
              Netsim.Net.Host.crash clients.(client);
              fault_event engine "client_crash"
                [ ("client", Obs.Trace.Int client) ])
      | Client_partition { at; client; heal_after } ->
          Sim.Engine.spawn engine
            ~name:(Printf.sprintf "fault.client%d-partition" client)
            (fun () ->
              Sim.Engine.sleep engine at;
              Netsim.Net.partition net clients.(client) server;
              fault_event engine "partition"
                [ ("client", Obs.Trace.Int client) ];
              Sim.Engine.sleep engine heal_after;
              Netsim.Net.heal net clients.(client) server;
              fault_event engine "heal" [ ("client", Obs.Trace.Int client) ]))
    t.events
