(* Integration tests of the experiment harness itself: the testbed
   layouts, and — crucially — the paper's headline *shape* claims,
   asserted as regression tests so recalibration cannot silently break
   the reproduction. *)

let nfs = Experiments.Testbed.Nfs_proto Nfs.Nfs_client.default_config

let snfs = Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config

(* ---- testbed layout ---- *)

let test_testbed_layout_local () =
  Experiments.Driver.run (fun engine ->
      let tb =
        Experiments.Testbed.create engine ~protocol:Experiments.Testbed.Local
          ~tmp:Experiments.Testbed.Tmp_local ()
      in
      let m = (Experiments.Testbed.ctx tb).Workload.App.mounts in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " exists") true (Vfs.Fileio.exists m p))
        [ "/data"; "/tmp"; "/usr_tmp"; "/local" ];
      Alcotest.(check bool) "no rpc service" true
        (Experiments.Testbed.service tb = None))

let test_testbed_layout_remote () =
  Experiments.Driver.run (fun engine ->
      let tb =
        Experiments.Testbed.create engine ~protocol:snfs
          ~tmp:Experiments.Testbed.Tmp_remote ()
      in
      let m = (Experiments.Testbed.ctx tb).Workload.App.mounts in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " exists") true (Vfs.Fileio.exists m p))
        [ "/data"; "/tmp"; "/usr_tmp" ];
      (* /data and /tmp share the remote namespace; /local does not *)
      Vfs.Fileio.write_file m "/data/x" ~bytes:10;
      Vfs.Fileio.write_file m "/local/x" ~bytes:20;
      Alcotest.(check int) "remote file" 10 (Vfs.Fileio.stat m "/data/x").Localfs.size;
      Alcotest.(check int) "local file" 20 (Vfs.Fileio.stat m "/local/x").Localfs.size;
      Alcotest.(check bool) "rpc service present" true
        (Experiments.Testbed.service tb <> None))

let test_testbed_tmp_local_split () =
  Experiments.Driver.run (fun engine ->
      let tb =
        Experiments.Testbed.create engine ~protocol:nfs
          ~tmp:Experiments.Testbed.Tmp_local ()
      in
      let m = (Experiments.Testbed.ctx tb).Workload.App.mounts in
      (* /tmp traffic must not generate RPCs in this layout *)
      let before = Stats.Counter.total (Experiments.Testbed.rpc_counts tb) in
      Vfs.Fileio.write_file m "/tmp/t" ~bytes:40_960;
      let after = Stats.Counter.total (Experiments.Testbed.rpc_counts tb) in
      Alcotest.(check int) "local /tmp: no RPCs" before after;
      (* /data traffic must *)
      Vfs.Fileio.write_file m "/data/d" ~bytes:4_096;
      let after2 = Stats.Counter.total (Experiments.Testbed.rpc_counts tb) in
      Alcotest.(check bool) "remote /data: RPCs" true (after2 > after))

(* ---- headline shape claims, as regressions ---- *)

let andrew_total variant_protocol tmp =
  let r =
    Experiments.Andrew_exp.run_variant
      { Experiments.Andrew_exp.label = "t"; protocol = variant_protocol; tmp }
  in
  (Workload.Andrew.total r.Experiments.Andrew_exp.phases, r)

let test_andrew_snfs_beats_nfs () =
  let nfs_total, nfs_r = andrew_total nfs Experiments.Testbed.Tmp_remote in
  let snfs_total, snfs_r = andrew_total snfs Experiments.Testbed.Tmp_remote in
  Alcotest.(check bool)
    (Printf.sprintf "SNFS %.0f < NFS %.0f" snfs_total nfs_total)
    true (snfs_total < nfs_total);
  (* the win is in the right band: paper says 15-20% *)
  let win = (nfs_total -. snfs_total) /. nfs_total in
  Alcotest.(check bool)
    (Printf.sprintf "total win %.0f%% in [10%%, 30%%]" (win *. 100.))
    true
    (win > 0.10 && win < 0.30);
  (* and SNFS moves less data *)
  let data r =
    Stats.Counter.total_of r.Experiments.Andrew_exp.counts Nfs.Wire.data_procs
  in
  Alcotest.(check bool) "fewer data RPCs" true (data snfs_r < data nfs_r)

let test_sort_ordering () =
  let run protocol update =
    (Experiments.Sort_exp.run_sort ~protocol ~update ~input_kb:1408 ~label:"t"
       ())
      .Experiments.Sort_exp.elapsed
  in
  let local = run Experiments.Testbed.Local (Some 30.0) in
  let nfs_t = run nfs (Some 30.0) in
  let snfs_t = run snfs (Some 30.0) in
  (* local < SNFS < NFS, and NFS is at least 1.5x SNFS (paper: ~2x) *)
  Alcotest.(check bool)
    (Printf.sprintf "local %.0f <= SNFS %.0f" local snfs_t)
    true
    (local <= snfs_t +. 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "SNFS %.0f < NFS %.0f" snfs_t nfs_t)
    true (snfs_t < nfs_t);
  Alcotest.(check bool)
    (Printf.sprintf "NFS/SNFS ratio %.2f > 1.5" (nfs_t /. snfs_t))
    true
    (nfs_t /. snfs_t > 1.5);
  (* with update off, SNFS matches local (Table 5-5's point) *)
  let local_off = run Experiments.Testbed.Local None in
  let snfs_off = run snfs None in
  Alcotest.(check bool)
    (Printf.sprintf "update off: SNFS %.0f within 10%% of local %.0f" snfs_off
       local_off)
    true
    (Float.abs (snfs_off -. local_off) /. local_off < 0.10)

let test_sort_write_aversion () =
  let writes protocol update =
    Stats.Counter.get
      (Experiments.Sort_exp.run_sort ~protocol ~update ~input_kb:1408
         ~label:"t" ())
        .Experiments.Sort_exp.counts "write"
  in
  Alcotest.(check int) "SNFS, update off: zero write RPCs" 0 (writes snfs None);
  let nfs_on = writes nfs (Some 30.0) in
  let nfs_off = writes nfs None in
  Alcotest.(check int) "NFS writes unchanged by update" nfs_on nfs_off;
  Alcotest.(check bool) "NFS writes everything" true (nfs_on > 1000)

let test_scaling_snfs_degrades_slower () =
  let nfs1 = Experiments.Scaling_exp.run ~protocol:nfs ~clients:1 () in
  let nfs4 = Experiments.Scaling_exp.run ~protocol:nfs ~clients:4 () in
  let snfs4 = Experiments.Scaling_exp.run ~protocol:snfs ~clients:4 () in
  Alcotest.(check bool) "4 SNFS clients beat 4 NFS clients" true
    (snfs4.Experiments.Scaling_exp.avg_elapsed
    < nfs4.Experiments.Scaling_exp.avg_elapsed);
  (* the paper's strong form: 4 SNFS clients fare no worse than ONE
     NFS client *)
  Alcotest.(check bool)
    (Printf.sprintf "SNFS x4 (%.0f) <= NFS x1 (%.0f) * 1.1"
       snfs4.Experiments.Scaling_exp.avg_elapsed
       nfs1.Experiments.Scaling_exp.avg_elapsed)
    true
    (snfs4.Experiments.Scaling_exp.avg_elapsed
    <= nfs1.Experiments.Scaling_exp.avg_elapsed *. 1.1)

let test_monitor_rows () =
  Experiments.Driver.run ~metrics:(Obs.Metrics.create ()) (fun engine ->
      let tb =
        Experiments.Testbed.create engine ~protocol:snfs
          ~tmp:Experiments.Testbed.Tmp_remote ()
      in
      let service = Option.get (Experiments.Testbed.service tb) in
      let mon =
        Experiments.Monitor.attach engine
          ~host:(Experiments.Testbed.server_host tb)
          ~service ~bin:5.0
      in
      let m = (Experiments.Testbed.ctx tb).Workload.App.mounts in
      Vfs.Fileio.write_file m "/data/f" ~bytes:40_960;
      ignore (Vfs.Fileio.read_file m "/data/f");
      Sim.Engine.sleep engine 20.0;
      let rows = Experiments.Monitor.rows mon ~until:20.0 in
      Alcotest.(check int) "4 bins" 4 (List.length rows);
      List.iter
        (fun row ->
          Alcotest.(check int) "5 columns" 5 (List.length row);
          let util = List.nth row 1 in
          Alcotest.(check bool) "util in [0,1]" true (util >= 0.0 && util <= 1.0))
        rows;
      (* some calls were observed *)
      let total_rate = List.fold_left (fun a r -> a +. List.nth r 2) 0.0 rows in
      Alcotest.(check bool) "calls observed" true (total_rate > 0.0))

let test_report_helpers () =
  Alcotest.(check string) "secs small" "1.23" (Experiments.Report.secs 1.234);
  Alcotest.(check string) "secs mid" "42.3" (Experiments.Report.secs 42.345);
  Alcotest.(check string) "secs big" "234" (Experiments.Report.secs 234.2);
  Alcotest.(check string) "pct" "+25%" (Experiments.Report.pct 0.25);
  Alcotest.(check string) "vs" "5 (paper: 4)"
    (Experiments.Report.vs ~measured:"5" ~paper:"4")

let () =
  Alcotest.run "experiments"
    [
      ( "testbed",
        [
          Alcotest.test_case "local layout" `Quick test_testbed_layout_local;
          Alcotest.test_case "remote layout" `Quick test_testbed_layout_remote;
          Alcotest.test_case "tmp-local split" `Quick test_testbed_tmp_local_split;
        ] );
      ( "shape regressions",
        [
          Alcotest.test_case "Andrew: SNFS beats NFS" `Slow
            test_andrew_snfs_beats_nfs;
          Alcotest.test_case "sort ordering" `Slow test_sort_ordering;
          Alcotest.test_case "sort write aversion" `Slow
            test_sort_write_aversion;
          Alcotest.test_case "scaling degrades slower" `Slow
            test_scaling_snfs_degrades_slower;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "monitor rows" `Quick test_monitor_rows;
          Alcotest.test_case "report helpers" `Quick test_report_helpers;
        ] );
    ]
