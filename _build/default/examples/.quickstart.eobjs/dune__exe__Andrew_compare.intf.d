examples/andrew_compare.mli:
