(** Experiment testbed: one client and one server wired the way the
    paper's Titans were (Section 5.2).

    - server: RA81-class disk, 3.5 MB buffer cache, synchronous
      metadata (it serves NFS);
    - client: its own local disk and file system (with the traditional
      synchronous-metadata Unix behaviour), a 16 MB protocol cache, and
      the 30-second [/etc/update] daemon unless disabled;
    - network: 10 Mb/s shared medium.

    The mount layout puts the file system under test at [/data] (and
    [/tmp], [/usr_tmp] when they are remote), and the client's
    always-local disk at [/local] (sort input/output live there). *)

type protocol =
  | Local
  | Nfs_proto of Nfs.Nfs_client.config
  | Snfs_proto of Snfs.Snfs_client.config
  | Rfs_proto of Rfs.Rfs_client.config
  | Kent_proto of Kentfs.Kent_client.config

val protocol_name : protocol -> string

(** Where /tmp and /usr_tmp live. *)
type tmp_placement = Tmp_local | Tmp_remote

type t

val create :
  Sim.Engine.t ->
  protocol:protocol ->
  tmp:tmp_placement ->
  ?update_interval:float option ->
  (* Some s = /etc/update period; None = infinite write-delay *)
  ?server_cache_blocks:int ->
  ?client_cache_blocks:int ->
  ?name_cache:bool ->
  (* directory-name lookup cache ablation (Section 5.2 footnote 6);
     off by default, as in the measured systems *)
  ?write_back_policy:[ `Unix | `Sprite of float ] ->
  (* `Unix (default): the syncer flushes every dirty block, as
     /etc/update's sync() does; `Sprite age: only blocks that have
     been dirty at least [age] seconds are written (Section 4.2.3) *)
  unit ->
  t

(** Application context (mounts + client host) for workloads. *)
val ctx : t -> Workload.App.t

(* snfs-lint: allow interface-drift — testbed plumbing accessor for custom experiments *)
val engine : t -> Sim.Engine.t
val client_host : t -> Netsim.Net.Host.t
val server_host : t -> Netsim.Net.Host.t
(* snfs-lint: allow interface-drift — testbed plumbing accessor for custom experiments *)
val server_disk : t -> Diskm.Disk.t
(* snfs-lint: allow interface-drift — testbed plumbing accessor for custom experiments *)
val client_disk : t -> Diskm.Disk.t

(** RPC service of the protocol under test ([None] for Local). *)
val service : t -> Netsim.Rpc.service option

(** The RPC transport (present even for Local, where it is idle);
    {!Netsim.Rpc.latencies} on it yields the per-procedure round-trip
    latency histograms. *)
val rpc : t -> Netsim.Rpc.t

(** Snapshot of the server-side per-procedure call counts (empty
    counter for Local). *)
val rpc_counts : t -> Stats.Counter.t

(** The client's protocol block cache ([None] for Local). *)
(* snfs-lint: allow interface-drift — testbed plumbing accessor for custom experiments *)
val protocol_cache : t -> Blockcache.Cache.t option

(** Let in-flight background work (write-behinds) settle without
    advancing past [horizon] virtual seconds. *)
val drain : t -> horizon:float -> unit
