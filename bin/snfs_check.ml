(* snfs_check — bounded exhaustive model checking of the Table 4-1
   state machine. Prints a summary; on an invariant violation prints
   GNU-style findings anchored at the state table's source (with the
   op sequence that reaches the violation) and exits non-zero. *)

let () =
  let t0 = Sys.time () in
  let result = Check.Explore.Table_checker.run () in
  let dt = Sys.time () -. t0 in
  Printf.printf
    "snfs_check: %d distinct states, %d transitions, depth %d, %.2fs\n"
    result.Check.Explore.stats.distinct_states
    result.Check.Explore.stats.transitions result.Check.Explore.stats.deepest
    dt;
  match result.Check.Explore.violations with
  | [] -> ()
  | vs ->
      List.iter
        (fun v ->
          Printf.printf "lib/core/state_table.ml:1: error: [check/%s] %s (after: %s)\n"
            v.Check.Explore.v_inv v.Check.Explore.v_detail
            (Check.Invariant.ops_to_string v.Check.Explore.v_path))
        vs;
      Printf.eprintf "snfs_check: %d invariant violation(s)\n" (List.length vs);
      exit 1
