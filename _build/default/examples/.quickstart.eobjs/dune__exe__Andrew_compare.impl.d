examples/andrew_compare.ml: Experiments Kentfs List Nfs Printf Rfs Snfs Stats Workload
