lib/core/version.mli:
