lib/workload/trace.mli: App Stats
