(* Per-client lifecycle bookkeeping for the server's crash detector
   (paper Section 2.4, refined along the lines of the Linux NFSD
   courtesy-client state machine). Pure: every operation takes the
   current time explicitly, so the module knows nothing about clocks
   or the simulation engine and the model checker can drive it
   directly. Active clients are not stored — absence of an entry is
   the Active state — so the table only ever holds the (rare)
   clients currently under suspicion. *)

type state = Active | Courtesy | Expirable

let state_to_string = function
  | Active -> "active"
  | Courtesy -> "courtesy"
  | Expirable -> "expirable"

type entry = {
  mutable e_expirable : bool; (* promoted by a conflict, never by time *)
  e_since : float; (* when the client was demoted out of Active *)
}

type t = {
  entries : (int, entry) Hashtbl.t;
  courtesy_lifetime : float;
}

let create ?(courtesy_lifetime = 300.0) () =
  if courtesy_lifetime < 0.0 then
    invalid_arg "Lifecycle.create: courtesy_lifetime must be >= 0";
  { entries = Hashtbl.create 8; courtesy_lifetime }

let courtesy_lifetime t = t.courtesy_lifetime

let state t ~client =
  match Hashtbl.find_opt t.entries client with
  | None -> Active
  | Some e -> if e.e_expirable then Expirable else Courtesy

let nonactive t = Hashtbl.length t.entries

let demote t ~client ~now =
  match Hashtbl.find_opt t.entries client with
  | Some _ -> false
  | None ->
      Hashtbl.replace t.entries client { e_expirable = false; e_since = now };
      true

let note_conflict t ~client =
  match Hashtbl.find_opt t.entries client with
  | Some e when not e.e_expirable ->
      e.e_expirable <- true;
      true
  | Some _ | None -> false

let revive t ~client =
  match Hashtbl.find_opt t.entries client with
  | Some e when not e.e_expirable ->
      Hashtbl.remove t.entries client;
      true
  | Some _ | None -> false

(* Both listings fold the hash table and sort by client id, so their
   order never depends on hashing. *)
let to_list t =
  Hashtbl.fold
    (fun client e acc ->
      ((client, (if e.e_expirable then Expirable else Courtesy), e.e_since)
       :: acc))
    t.entries []
  |> List.sort compare

let due t ~now =
  Hashtbl.fold
    (fun client e acc ->
      if e.e_expirable then (client, Expirable) :: acc
      else if now -. e.e_since >= t.courtesy_lifetime then
        (client, Courtesy) :: acc
      else acc)
    t.entries []
  |> List.sort compare

let forget t ~client = Hashtbl.remove t.entries client

let counts t =
  (* snfs-fanout: bounded — non-blocking metrics fold on the poll timer *)
  Hashtbl.fold
    (fun _ e (courtesy, expirable) ->
      if e.e_expirable then (courtesy, expirable + 1)
      else (courtesy + 1, expirable))
    t.entries (0, 0)

let reset t = Hashtbl.reset t.entries

(* entries are mutable records, so a Hashtbl.copy would share them and
   a conflict in the copy would promote the original's client too *)
let copy t =
  let entries = Hashtbl.create (max 8 (Hashtbl.length t.entries)) in
  Hashtbl.iter (fun client e -> Hashtbl.replace entries client { e with e_expirable = e.e_expirable }) t.entries;
  { t with entries }
