(** Findings baseline.

    The baseline is a plain-text file accepting pre-existing findings:
    one finding per line as [rule<TAB>path<TAB>message], blank lines
    and [#]-comments ignored. A finding matches a baseline entry by
    rule, path and message — deliberately not by line, so unrelated
    edits above a baselined finding do not resurrect it.

    CI fails on any finding that is neither waived in-source nor
    present here; a clean tree keeps this file absent or empty. *)

type t

val empty : t

(** Parse baseline file contents. Malformed lines are ignored. *)
val of_string : string -> t

(** Render findings as baseline file contents (for bootstrapping). *)
val to_string : Finding.t list -> string

(** Partition findings into (new, baselined). *)
val apply : t -> Finding.t list -> Finding.t list * Finding.t list
