type backend = {
  read_block : file:int -> index:int -> int * int;
  write_block : file:int -> index:int -> stamp:int -> len:int -> unit;
}

type wstate = Clean | Dirty of float | Writing of { mutable redirtied : float option }

type block = {
  bfile : int;
  bindex : int;
  mutable stamp : int;
  mutable len : int;
  mutable fetching : (int * int) Sim.Ivar.t option;
  mutable w : wstate;
  mutable doomed : bool; (* deleted while a write/fetch was in flight *)
  mutable write_waiters : (unit -> unit) list;
  mutable lru_prev : block option;
  mutable lru_next : block option;
}

type pending = { mutable count : int; mutable waiters : (unit -> unit) list }

type t = {
  engine : Sim.Engine.t;
  name : string;
  capacity : int;
  block_size : int;
  backend : backend;
  files : (int, (int, block) Hashtbl.t) Hashtbl.t;
  mutable count : int;
  mutable lru_head : block option; (* least recently used *)
  mutable lru_tail : block option; (* most recently used *)
  pending : (int, pending) Hashtbl.t; (* async write-behinds per file *)
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
  mutable writes_averted : int;
  mutable evictions : int;
  mutable syncer_started : bool;
}

let create engine ~name ~capacity_blocks ~block_size backend =
  if capacity_blocks <= 0 then invalid_arg "Cache.create: capacity must be > 0";
  let t =
    {
      engine;
      name;
      capacity = capacity_blocks;
      block_size;
      backend;
      files = Hashtbl.create 64;
      count = 0;
      lru_head = None;
      lru_tail = None;
      pending = Hashtbl.create 16;
      hits = 0;
      misses = 0;
      writebacks = 0;
      writes_averted = 0;
      evictions = 0;
      syncer_started = false;
    }
  in
  Obs.Metrics.register_poll
    ~labels:[ ("cache", name) ]
    "cache_resident_blocks"
    (fun () -> float_of_int t.count);
  Obs.Metrics.register_poll
    ~labels:[ ("cache", name) ]
    "cache_dirty_blocks"
    (fun () ->
      (* a count is order-independent, so the unsorted table walk is
         deterministic *)
      Hashtbl.fold
        (fun _ per_file acc ->
          Hashtbl.fold
            (fun _ b acc ->
              match b.w with Dirty _ | Writing _ -> acc + 1 | Clean -> acc)
            per_file acc)
        t.files 0
      |> float_of_int);
  t

let name t = t.name
let block_size t = t.block_size
let capacity_blocks t = t.capacity
let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks
let writes_averted t = t.writes_averted
let evictions t = t.evictions
let resident_blocks t = t.count

(* One instant per cache action on this cache's own track. Args carry
   the block's (file, index) address only — never its stamp, which is a
   process-global counter and would break trace determinism across runs
   in one process. *)
let cache_incr t metric =
  if Obs.Metrics.on () then
    Obs.Metrics.incr ~labels:[ ("cache", t.name) ] metric

let cache_event t name ~file ~index =
  if Obs.Trace.on () then
    Obs.Trace.instant
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"cache" ~name ~track:t.name
      ~args:[ ("file", Obs.Trace.Int file); ("index", Obs.Trace.Int index) ]
      ()

(* ---- LRU list ---- *)

let lru_unlink t b =
  (match b.lru_prev with
  | Some p -> p.lru_next <- b.lru_next
  | None -> (
      (* physical identity: b may not be linked at all *)
      match t.lru_head with
      | Some h when h == b -> t.lru_head <- b.lru_next
      | Some _ | None -> ()));
  (match b.lru_next with
  | Some n -> n.lru_prev <- b.lru_prev
  | None -> (
      match t.lru_tail with
      | Some tl when tl == b -> t.lru_tail <- b.lru_prev
      | Some _ | None -> ()));
  b.lru_prev <- None;
  b.lru_next <- None

let lru_append t b =
  b.lru_prev <- t.lru_tail;
  b.lru_next <- None;
  (match t.lru_tail with Some p -> p.lru_next <- Some b | None -> ());
  t.lru_tail <- Some b;
  if t.lru_head = None then t.lru_head <- Some b

let touch t b =
  lru_unlink t b;
  lru_append t b

(* ---- table ---- *)

let find t ~file ~index =
  match Hashtbl.find_opt t.files file with
  | None -> None
  | Some per_file -> Hashtbl.find_opt per_file index

let table_remove t b =
  match Hashtbl.find_opt t.files b.bfile with
  | None -> ()
  | Some per_file ->
      if Hashtbl.mem per_file b.bindex then begin
        Hashtbl.remove per_file b.bindex;
        if Hashtbl.length per_file = 0 then Hashtbl.remove t.files b.bfile;
        t.count <- t.count - 1;
        lru_unlink t b
      end

let table_insert t b =
  let per_file =
    match Hashtbl.find_opt t.files b.bfile with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 16 in
        Hashtbl.replace t.files b.bfile h;
        h
  in
  Hashtbl.replace per_file b.bindex b;
  t.count <- t.count + 1;
  lru_append t b

let blocks_of_file t ~file =
  match Hashtbl.find_opt t.files file with
  | None -> []
  | Some per_file -> Hashtbl.fold (fun _ b acc -> b :: acc) per_file []

(* ---- write-back machinery ---- *)

let wake_write_waiters b =
  let ws = List.rev b.write_waiters in
  b.write_waiters <- [];
  List.iter (fun w -> w ()) ws

let wait_write t b =
  match b.w with
  | Writing _ ->
      Sim.Engine.suspend t.engine (fun resume ->
          b.write_waiters <- (fun () -> resume ()) :: b.write_waiters)
  | Clean | Dirty _ -> ()

(* Write the block back if dirty; blocks the caller until the block is
   clean (or the in-flight write it was waiting on completes). *)
let rec do_writeback t b =
  match b.w with
  | Clean -> ()
  | Writing _ ->
      wait_write t b;
      do_writeback t b
  | Dirty _ ->
      let st = Writing { redirtied = None } in
      b.w <- st;
      t.writebacks <- t.writebacks + 1;
      cache_incr t "cache_writebacks_total";
      cache_event t "writeback" ~file:b.bfile ~index:b.bindex;
      t.backend.write_block ~file:b.bfile ~index:b.bindex ~stamp:b.stamp
        ~len:b.len;
      (match st with
      | Writing r -> (
          match r.redirtied with
          | Some since -> b.w <- Dirty since
          | None -> b.w <- Clean)
      | Clean | Dirty _ -> assert false);
      wake_write_waiters b;
      if b.doomed then table_remove t b

let mark_dirty t b =
  let now = Sim.Engine.now t.engine in
  match b.w with
  | Clean -> b.w <- Dirty now
  | Dirty _ -> () (* keep original age: Unix tracks oldest modification *)
  | Writing r -> r.redirtied <- Some now

(* ---- capacity / eviction ---- *)

let evictable b =
  (not b.doomed) && b.fetching = None
  && match b.w with Clean | Dirty _ -> true | Writing _ -> false

let rec ensure_capacity t =
  if t.count >= t.capacity then begin
    (* scan from LRU end for an evictable block *)
    let rec scan = function
      | None -> None
      | Some b -> if evictable b then Some b else scan b.lru_next
    in
    match scan t.lru_head with
    | Some b ->
        (match b.w with
        | Dirty _ -> do_writeback t b (* blocks; may race, rechecked below *)
        | Clean | Writing _ -> ());
        (* only evict if it is still present and became clean *)
        (match find t ~file:b.bfile ~index:b.bindex with
        | Some b' when b' == b && evictable b && b.w = Clean ->
            t.evictions <- t.evictions + 1;
            cache_incr t "cache_evictions_total";
            cache_event t "evict" ~file:b.bfile ~index:b.bindex;
            table_remove t b
        | _ -> ());
        ensure_capacity t
    | None ->
        (* everything is in flight; wait a moment and retry *)
        Sim.Engine.sleep t.engine 0.0005;
        ensure_capacity t
  end

(* ---- pending async writes ---- *)

let pending_for t file =
  match Hashtbl.find_opt t.pending file with
  | Some p -> p
  | None ->
      let p = { count = 0; waiters = [] } in
      Hashtbl.replace t.pending file p;
      p

let pending_incr t file = (pending_for t file).count <- (pending_for t file).count + 1

let pending_decr t file =
  let p = pending_for t file in
  p.count <- p.count - 1;
  if p.count = 0 then begin
    let ws = List.rev p.waiters in
    p.waiters <- [];
    Hashtbl.remove t.pending file;
    List.iter (fun w -> w ()) ws
  end

let wait_pending t ~file =
  match Hashtbl.find_opt t.pending file with
  | None -> ()
  | Some p ->
      if p.count > 0 then
        Sim.Engine.suspend t.engine (fun resume ->
            p.waiters <- (fun () -> resume ()) :: p.waiters)

(* ---- public data path ---- *)

let peek t ~file ~index =
  match find t ~file ~index with
  | Some b when b.fetching = None -> Some (b.stamp, b.len)
  | Some _ | None -> None

let new_block ~file ~index =
  {
    bfile = file;
    bindex = index;
    stamp = 0;
    len = 0;
    fetching = None;
    w = Clean;
    doomed = false;
    write_waiters = [];
    lru_prev = None;
    lru_next = None;
  }

let read t ~file ~index =
  match find t ~file ~index with
  | Some b -> (
      cache_event t "hit" ~file ~index;
      cache_incr t "cache_hits_total";
      match b.fetching with
      | Some iv ->
          t.hits <- t.hits + 1;
          Sim.Ivar.read iv
      | None ->
          t.hits <- t.hits + 1;
          touch t b;
          (b.stamp, b.len))
  | None ->
      t.misses <- t.misses + 1;
      cache_incr t "cache_misses_total";
      cache_event t "miss" ~file ~index;
      ensure_capacity t;
      (* recheck: someone may have inserted it while we evicted *)
      (match find t ~file ~index with
      | Some b -> (
          match b.fetching with
          | Some iv -> Sim.Ivar.read iv
          | None ->
              touch t b;
              (b.stamp, b.len))
      | None ->
          let b = new_block ~file ~index in
          let iv = Sim.Ivar.create t.engine in
          b.fetching <- Some iv;
          table_insert t b;
          let stamp, len = t.backend.read_block ~file ~index in
          (match b.fetching with
          | Some iv' when iv' == iv ->
              b.stamp <- stamp;
              b.len <- len;
              b.fetching <- None
          | Some _ | None -> () (* overwritten while fetching *));
          let result = (b.stamp, b.len) in
          Sim.Ivar.fill iv result;
          if b.doomed then table_remove t b;
          result)

let write t ~file ~index ~stamp ~len mode =
  if len < 0 || len > t.block_size then
    invalid_arg (Printf.sprintf "Cache.write: bad length %d" len);
  let b =
    match find t ~file ~index with
    | Some b -> b
    | None ->
        ensure_capacity t;
        (match find t ~file ~index with
        | Some b -> b
        | None ->
            let b = new_block ~file ~index in
            table_insert t b;
            b)
  in
  b.stamp <- stamp;
  b.len <- max b.len len;
  b.fetching <- None;
  touch t b;
  mark_dirty t b;
  match mode with
  | `Delayed -> ()
  | `Sync -> do_writeback t b
  | `Async ->
      pending_incr t file;
      Sim.Engine.spawn t.engine ~name:(t.name ^ ".write_behind") (fun () ->
          do_writeback t b;
          pending_decr t file)

(* ---- consistency operations ---- *)

let flush_file t ~file =
  let rec loop () =
    let dirty =
      blocks_of_file t ~file
      |> List.filter (fun b ->
             match b.w with Dirty _ | Writing _ -> true | Clean -> false)
      |> List.sort (fun a b -> compare a.bindex b.bindex)
    in
    if dirty <> [] then begin
      List.iter (fun b -> do_writeback t b) dirty;
      loop () (* a write may have landed while we were flushing *)
    end
  in
  loop ()

let flush_all t =
  let files = Hashtbl.fold (fun file _ acc -> file :: acc) t.files [] in
  List.iter (fun file -> flush_file t ~file) (List.sort compare files)

let flush_block t ~file ~index =
  match find t ~file ~index with
  | None -> ()
  | Some b -> do_writeback t b

let drop_block t ~file ~index =
  match find t ~file ~index with
  | None -> ()
  | Some b -> (
      match (b.w, b.fetching) with
      | Dirty _, _ ->
          t.writes_averted <- t.writes_averted + 1;
          cache_incr t "cache_writes_averted_total";
          b.w <- Clean;
          table_remove t b
      | Writing _, _ -> b.doomed <- true
      | Clean, None -> table_remove t b
      | Clean, Some _ -> b.doomed <- true)

let drop_clean t ~file =
  List.iter
    (fun b ->
      match (b.w, b.fetching) with
      | Clean, None -> table_remove t b
      | Clean, Some _ -> b.doomed <- true
      | (Dirty _ | Writing _), _ -> ())
    (blocks_of_file t ~file)

let block_dirty t ~file ~index =
  match find t ~file ~index with
  | None -> false
  | Some b -> ( match b.w with Dirty _ | Writing _ -> true | Clean -> false)

let dirty_count t ~file =
  blocks_of_file t ~file
  |> List.filter (fun b ->
         match b.w with Dirty _ | Writing _ -> true | Clean -> false)
  |> List.length

let holds_file t ~file = blocks_of_file t ~file <> []

let invalidate_file t ~file =
  let blocks = blocks_of_file t ~file in
  List.iter
    (fun b ->
      match (b.w, b.fetching) with
      | Clean, None -> table_remove t b
      | Clean, Some _ -> b.doomed <- true
      | (Dirty _ | Writing _), _ ->
          invalid_arg "Cache.invalidate_file: file has dirty blocks")
    blocks

let cancel_dirty t ~file =
  let blocks = blocks_of_file t ~file in
  let averted = ref 0 in
  List.iter
    (fun b ->
      match (b.w, b.fetching) with
      | Dirty _, _ ->
          incr averted;
          t.writes_averted <- t.writes_averted + 1;
          cache_incr t "cache_writes_averted_total";
          b.w <- Clean;
          table_remove t b
      | Writing _, _ -> b.doomed <- true (* in flight; dropped on completion *)
      | Clean, None -> table_remove t b
      | Clean, Some _ -> b.doomed <- true)
    blocks;
  !averted

(* ---- syncer ---- *)

(* Flush a batch with bounded parallelism, like the pool of biod-style
   write-back daemons real clients ran; a serial flusher could not keep
   up with a busy application. *)
let flush_batch t ?(parallelism = 4) victims =
  match victims with
  | [] -> ()
  | victims ->
      let pool = Sim.Semaphore.create t.engine parallelism in
      let wg = Sim.Waitgroup.create t.engine in
      Sim.Waitgroup.add wg ~n:(List.length victims) ();
      List.iter
        (fun b ->
          Sim.Engine.spawn t.engine ~name:(t.name ^ ".flusher") (fun () ->
              Sim.Semaphore.with_unit pool (fun () -> do_writeback t b);
              Sim.Waitgroup.done_ wg))
        victims;
      Sim.Waitgroup.wait wg

let start_syncer t ?(min_age = 0.0) ~interval () =
  if t.syncer_started then invalid_arg "Cache.start_syncer: already started";
  t.syncer_started <- true;
  let rec loop () =
    Sim.Engine.sleep t.engine interval;
    let now = Sim.Engine.now t.engine in
    let old_enough b =
      match b.w with Dirty since -> now -. since >= min_age | Clean | Writing _ -> false
    in
    let victims =
      Hashtbl.fold
        (fun _ per_file acc ->
          Hashtbl.fold (fun _ b acc -> if old_enough b then b :: acc else acc)
            per_file acc)
        t.files []
      |> List.sort (fun a b -> compare (a.bfile, a.bindex) (b.bfile, b.bindex))
    in
    flush_batch t victims;
    loop ()
  in
  Sim.Engine.spawn t.engine ~name:(t.name ^ ".syncer") loop
