lib/sim/engine.mli:
