type t = (string * string * string) list (* rule, path, message *)

let empty = []

let of_string s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.split_on_char '\t' line with
           | rule :: path :: rest when rest <> [] ->
               Some (rule, path, String.concat "\t" rest)
           | _ -> None)

let to_string findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "# snfs_lint baseline: accepted findings, one per line as\n\
     # rule<TAB>path<TAB>message. Matched ignoring line numbers.\n";
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s\t%s\t%s\n" f.Finding.rule f.Finding.path
           f.Finding.message))
    findings;
  Buffer.contents buf

let apply t findings =
  List.partition
    (fun (f : Finding.t) ->
      not
        (List.mem (f.Finding.rule, f.Finding.path, f.Finding.message) t))
    findings
