(* Atomic, not a plain ref: parallel campaigns (Experiments.Sweep) run
   independent simulations on separate domains, and stamps must stay
   unique process-wide. Stamps never appear in reports or traces, so
   the cross-domain interleaving does not affect output determinism. *)
let counter = Atomic.make 0

let fresh () = Atomic.fetch_and_add counter 1 + 1
