type params = {
  positioning : float;
  transfer_rate : float;
  per_request_overhead : float;
}

let ra81 =
  { positioning = 0.030; transfer_rate = 2.2e6; per_request_overhead = 0.001 }

type t = {
  name : string;
  params : params;
  engine : Sim.Engine.t;
  arm : Sim.Resource.t;
  mutable reads : int;
  mutable writes : int;
  mutable bytes_read : int;
  mutable bytes_written : int;
  mutable next_at : int option; (* address following the last request *)
}

let create engine ?(params = ra81) name =
  {
    name;
    params;
    engine;
    arm = Sim.Resource.create engine ~capacity:1 (name ^ ".arm");
    reads = 0;
    writes = 0;
    bytes_read = 0;
    bytes_written = 0;
    next_at = None;
  }

let name t = t.name

let service_time t ~at bytes =
  let sequential =
    match (at, t.next_at) with
    | Some a, Some expected -> a = expected
    | _, _ -> false
  in
  (t.next_at <- match at with Some a -> Some (a + 1) | None -> None);
  t.params.per_request_overhead
  +. (if sequential then 0.0 else t.params.positioning)
  +. (float_of_int bytes /. t.params.transfer_rate)

(* Span covers queueing for the arm plus service: that whole wait is
   what the request's operation experiences as "disk". *)
let io_span t ~ctx name bytes =
  if Obs.Trace.on () && Obs.Causal.keep ctx then
    Obs.Trace.span
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"disk" ~name ~track:t.name
      ~args:(Obs.Causal.arg ctx [ ("bytes", Obs.Trace.Int bytes) ])
      ()
  else Obs.Trace.none

let finish_span t sp =
  Obs.Trace.finish ~ts:(Sim.Engine.now t.engine) sp

let read ?at ?(ctx = Obs.Causal.none) t ~bytes =
  if bytes < 0 then invalid_arg "Disk.read: negative size";
  t.reads <- t.reads + 1;
  t.bytes_read <- t.bytes_read + bytes;
  let dur = service_time t ~at bytes in
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr ~labels:[ ("device", t.name) ] "disk_reads_total";
    Obs.Metrics.incr
      ~labels:[ ("device", t.name) ]
      ~n:bytes "disk_bytes_read_total";
    Obs.Metrics.observe ~labels:[ ("device", t.name) ] "disk_io_seconds" dur
  end;
  let sp = io_span t ~ctx "disk read" bytes in
  Sim.Resource.use t.arm dur;
  finish_span t sp

let write ?at ?(ctx = Obs.Causal.none) t ~bytes =
  if bytes < 0 then invalid_arg "Disk.write: negative size";
  t.writes <- t.writes + 1;
  t.bytes_written <- t.bytes_written + bytes;
  let dur = service_time t ~at bytes in
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr ~labels:[ ("device", t.name) ] "disk_writes_total";
    Obs.Metrics.incr
      ~labels:[ ("device", t.name) ]
      ~n:bytes "disk_bytes_written_total";
    Obs.Metrics.observe ~labels:[ ("device", t.name) ] "disk_io_seconds" dur
  end;
  let sp = io_span t ~ctx "disk write" bytes in
  Sim.Resource.use t.arm dur;
  finish_span t sp

let reads t = t.reads
let writes t = t.writes
let bytes_read t = t.bytes_read
let bytes_written t = t.bytes_written
let busy_time t = Sim.Resource.busy_time t.arm
