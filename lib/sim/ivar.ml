type 'a t = {
  engine : Engine.t;
  mutable value : 'a option;
  mutable waiters : ('a -> unit) list;
}

let create engine = { engine; value = None; waiters = [] }

let is_full t = t.value <> None

let peek t = t.value

let fill t v =
  match t.value with
  | Some _ -> invalid_arg "Ivar.fill: already filled"
  | None ->
      t.value <- Some v;
      let waiters = List.rev t.waiters in
      t.waiters <- [];
      List.iter (fun w -> w v) waiters

let read t =
  match t.value with
  | Some v -> v
  | None ->
      Engine.suspend t.engine (fun resume ->
          t.waiters <- resume :: t.waiters)

let read_timeout t timeout =
  match t.value with
  | Some v -> Some v
  | None ->
      Engine.suspend t.engine (fun resume ->
          let fired = ref false in
          let once r =
            if not !fired then begin
              fired := true;
              resume r
            end
          in
          t.waiters <- (fun v -> once (Some v)) :: t.waiters;
          Engine.timer t.engine timeout (fun () -> once None))
