examples/sort_compare.ml: Experiments Kentfs List Nfs Printf Rfs Snfs Stats
