(** The pass interface the driver runs.

    A pass sees the whole parsed workspace at once (cross-file passes
    like interface-drift need it) plus the shared fact tables the
    driver pre-computes: the global mutable-field-name set, the
    whole-program call graph and the interprocedural may-yield
    summaries. Passes return raw findings; waiver and baseline
    filtering is the driver's job. *)

type ctx = {
  files : Source.t list;  (** every parsed source file, sorted by path *)
  mutable_fields : (string, unit) Hashtbl.t;
      (** field names declared [mutable] anywhere in the workspace *)
  cg : Callgraph.t;  (** the whole-program call graph *)
  may_yield : (string, unit) Hashtbl.t;
      (** node ids whose call may reach a blocking point *)
}

type t = {
  name : string;  (** rule name findings carry, e.g. ["yield-race"] *)
  doc : string;  (** one-line description for [--list-passes] *)
  run : ctx -> Finding.t list;
}
