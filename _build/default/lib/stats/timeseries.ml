type t = {
  name : string;
  bin : float;
  mutable data : float array;
  mutable max_bin : int; (* highest bin index touched, -1 if none *)
}

let create ~bin name =
  if bin <= 0.0 then invalid_arg "Timeseries.create: bin must be > 0";
  { name; bin; data = Array.make 64 0.0; max_bin = -1 }

let name t = t.name
let bin_width t = t.bin

let ensure t i =
  if i >= Array.length t.data then begin
    let len = ref (Array.length t.data) in
    while i >= !len do
      len := 2 * !len
    done;
    let data = Array.make !len 0.0 in
    Array.blit t.data 0 data 0 (Array.length t.data);
    t.data <- data
  end

let add t ~time v =
  if time < 0.0 then invalid_arg "Timeseries.add: negative time";
  let i = int_of_float (time /. t.bin) in
  ensure t i;
  t.data.(i) <- t.data.(i) +. v;
  if i > t.max_bin then t.max_bin <- i

let bins t = t.max_bin + 1

let value t i = if i < 0 || i > t.max_bin then 0.0 else t.data.(i)

let rate t i = value t i /. t.bin

let to_list t =
  List.init (bins t) (fun i -> (float_of_int i *. t.bin, t.data.(i)))
