lib/experiments/ablation_exp.ml: Driver Nfs Report Rfs Snfs Stats Testbed Workload
