(** Block-granularity cache consistency, after Kent's design (the
    paper's Section 2.5 / reference [4]): before a client writes a
    block it must acquire *ownership* of that block; other clients'
    cached copies of the block are invalidated, and only one client at
    a time owns a block.

    Kent's implementation needed special hardware "to implement the
    consistency protocol with sufficient performance" — this software
    rendition lets the simulation show why: every first write to a
    block costs an [acquire] round trip, while reads of a block owned
    elsewhere trigger a recall callback. In exchange, write-sharing
    does not disable caching (as SNFS's whole-file policy does) —
    clients sharing *different blocks* of a file keep full
    delayed-write performance.

    Per-(file, block) server state: the owner (if any) and the copy
    set of clients that may hold clean copies. Namespace operations are
    the shared NFS ones; attributes are not cached by clients (the
    logical size advances at acquire time, so readers always learn the
    current extent). *)

type t

val prog : string
val client_prog_for : int -> string

(** Acquire-ownership procedure name (the protocol's one addition to
    the shared wire vocabulary). *)
val p_acquire : string

val serve :
  Netsim.Rpc.t -> Netsim.Net.Host.t -> ?threads:int -> fsid:int -> Localfs.t -> t

(* snfs-lint: allow interface-drift — server identity accessor, symmetric across the four stacks *)
val host : t -> Netsim.Net.Host.t
val root_fh : t -> Nfs.Wire.fh
val counters : t -> Stats.Counter.t
val service : t -> Netsim.Rpc.service

(** Ownership recalls / copy invalidations sent. *)
val recalls_sent : t -> int
val invalidations_sent : t -> int
