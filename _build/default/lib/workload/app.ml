type t = {
  mounts : Vfs.Mount.t;
  host : Netsim.Net.Host.t;
  engine : Sim.Engine.t;
}

let make ~mounts ~host = { mounts; host; engine = Netsim.Net.Host.engine host }

let think t seconds = Netsim.Net.Host.use_cpu t.host seconds

let now t = Sim.Engine.now t.engine

let timed t fn =
  let t0 = now t in
  let result = fn () in
  (now t -. t0, result)
