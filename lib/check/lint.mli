(** Determinism and protocol-hygiene lint for the simulator sources.

    The whole reproduction rests on PR 1's byte-identical-trace
    guarantee: a run is a pure function of its inputs. This pass
    statically rejects source patterns that quietly break that, plus
    one interface-hygiene rule:

    - [determinism]: wall-clock and ambient-entropy calls
      ([Unix.gettimeofday], [Unix.time], [Sys.time],
      [Random.self_init]) anywhere outside [bin/] — simulated time
      comes from [Sim.Engine], randomness from [Sim.Rand];
    - [hashtbl-order]: a [Hashtbl.iter]/[Hashtbl.fold] in [lib/] whose
      surrounding definition feeds trace emission, callbacks, or RPC
      sends without an intervening sort — hash-bucket order is not part
      of any contract, so emission order must not depend on it;
    - [missing-mli]: a [.ml] in [lib/] with no corresponding [.mli].

    Comments and string/char literals are stripped before matching, so
    prose about "callbacks" never trips the pass. A finding can be
    waived with a comment containing [snfs-lint: allow <rule>] on the
    flagged line or the line above.

    Findings carry [file:line] and print in GNU error format
    ([path:line: error: [rule] message]) so editors and CI annotate
    them directly. *)

type finding = {
  f_path : string;
  f_line : int;  (** 1-based *)
  f_rule : string;
  f_message : string;
}

val to_string : finding -> string

(** [scan_source ~path src] applies the content rules to one file;
    [path] (workspace-relative, '/'-separated) decides which rules
    apply. *)
val scan_source : path:string -> string -> finding list

(** The [missing-mli] rule over a list of workspace-relative paths. *)
val check_mli_pairs : string list -> finding list

(** Walk [root]'s [lib]/[bin]/[test]/[bench]/[examples] trees (skipping
    [_build], dot-directories) and apply every rule. *)
val scan_tree : string -> finding list

(** Comment/string stripper, exposed for the lint's own tests. *)
val strip : string -> string
