let prog = "snfs"

let client_prog_for fsid = "snfs_cb." ^ string_of_int fsid

type t = {
  rpc : Netsim.Rpc.t;
  host : Netsim.Net.Host.t;
  core : Nfs.Wire.server_core;
  mutable table : Spritely.State_table.t;
  max_table_entries : int;
  service : Netsim.Rpc.service;
  callback_tokens : Sim.Semaphore.t; (* at most threads-1 concurrent *)
  mutable callbacks_sent : int;
  mutable callbacks_failed : int;
  (* client addr -> last RPC time. The cell is a [float ref] rather
     than a float value so the per-request refresh is a store into the
     existing (flat, unboxed) cell instead of a boxed-float
     [Hashtbl.replace]. *)
  last_heard : (int, float ref) Hashtbl.t;
  (* per-file consistency critical section: the table must not be
     consulted by a second open while a first open's callbacks are
     still in flight, or the second open trusts a cachability the
     target client has not yet learned about *)
  file_locks : (int, Sim.Semaphore.t) Hashtbl.t;
  mutable clients_reaped : int;
  (* the NFSD-style Active/Courtesy/Expirable ledger; None until the
     laundromat is started (oracle runs and plain benchmarks never
     start one, and then callbacks keep the legacy blunt behavior) *)
  mutable lifecycle : Spritely.Lifecycle.t option;
  mutable laundromat_runs : int;
  mutable demotions : int;
  mutable revivals : int;
  mutable reaped_courtesy : int;
  mutable reaped_expirable : int;
  recovery_grace : float;
  mutable grace_until : float;
  recovered : (int, unit) Hashtbl.t; (* clients that replayed state *)
  engine : Sim.Engine.t;
}

let mode_of_flag write_mode =
  if write_mode then Spritely.State_table.Write else Spritely.State_table.Read

let server_event t name args =
  if Obs.Trace.on () then
    Obs.Trace.instant
      ~ts:(Sim.Engine.now t.engine)
      ~cat:"snfs" ~name
      ~track:(Netsim.Net.Host.name t.host)
      ~args ()

(* Count one consistency-state transition, labeled with the Table 4-1
   state the file just entered. *)
let note_state t ~file =
  if Obs.Metrics.on () then
    Obs.Metrics.incr
      ~labels:
        [
          ( "state",
            Spritely.State_table.state_to_string
              (Spritely.State_table.state t.table ~file) );
        ]
      "snfs_state_transitions_total"

(* Reap one client: its opens are dropped, files it may have dirtied
   are flagged inconsistent, and its lifecycle entry (if any) goes. The
   [state] names the lifecycle stage it was reaped from, for the
   by-state counters. *)
let reap t client ~(state : Spritely.Lifecycle.state) =
  t.clients_reaped <- t.clients_reaped + 1;
  (match state with
  | Spritely.Lifecycle.Courtesy -> t.reaped_courtesy <- t.reaped_courtesy + 1
  | Spritely.Lifecycle.Expirable -> t.reaped_expirable <- t.reaped_expirable + 1
  | Spritely.Lifecycle.Active -> ());
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr "snfs_clients_reaped_total";
    Obs.Metrics.incr
      ~labels:[ ("state", Spritely.Lifecycle.state_to_string state) ]
      "snfs_laundromat_reaps_total"
  end;
  server_event t "client_reaped"
    [
      ("client", Obs.Trace.Int client);
      ("state", Obs.Trace.Str (Spritely.Lifecycle.state_to_string state));
    ];
  Hashtbl.remove t.last_heard client;
  (match t.lifecycle with
  | Some lc -> Spritely.Lifecycle.forget lc ~client
  | None -> ());
  Spritely.State_table.forget_client t.table client

let note_callback_failure t ~cause =
  t.callbacks_failed <- t.callbacks_failed + 1;
  if Obs.Metrics.on () then begin
    Obs.Metrics.incr "snfs_callbacks_failed_total";
    Obs.Metrics.incr ~labels:[ ("cause", cause) ]
      "snfs_callback_failures_total"
  end

(* A callback prescribed against a Courtesy (or Expirable) client IS
   the conflict of the lifecycle contract: another client's open needs
   state only this silent client holds. Promote it to Expirable and
   reap it on the spot — the waiting opener must not block on a 31 s
   ping schedule to a client the laundromat already suspects. Returns
   true when the callback was resolved this way (nothing to send). *)
let conflict_with_suspect t ~file (cb : Spritely.State_table.callback) =
  match t.lifecycle with
  | None -> false
  | Some lc -> (
      match Spritely.Lifecycle.state lc ~client:cb.target with
      | Spritely.Lifecycle.Active -> false
      | Spritely.Lifecycle.Courtesy | Spritely.Lifecycle.Expirable ->
          ignore (Spritely.Lifecycle.note_conflict lc ~client:cb.target);
          note_callback_failure t ~cause:"courtesy_conflict";
          server_event t "callback_conflict"
            [ ("file", Obs.Trace.Int file);
              ("client", Obs.Trace.Int cb.target) ];
          reap t cb.target ~state:Spritely.Lifecycle.Expirable;
          true)

(* Deliver one callback prescribed by the state table. A dead client
   is forgotten, as Section 3.2 prescribes; its dirty data (if any) is
   lost and the entry stays flagged inconsistent. *)
let perform_callback_live t ~ctx ~file (cb : Spritely.State_table.callback) =
  let target = Netsim.Net.Host.by_addr (Netsim.Rpc.net t.rpc) cb.target in
  let attrs = Localfs.getattr ~ctx (Nfs.Wire.core_fs t.core) file in
  let args =
    {
      Nfs.Wire.cb_fh =
        {
          Nfs.Wire.fsid = Nfs.Wire.core_fsid t.core;
          ino = file;
          gen = attrs.Localfs.gen;
        };
      cb_writeback = cb.writeback;
      cb_invalidate = cb.invalidate;
      cb_ctx = Obs.Causal.id ctx;
    }
  in
  let e = Xdr.Enc.create () in
  Nfs.Wire.enc_callback e args;
  t.callbacks_sent <- t.callbacks_sent + 1;
  if Obs.Metrics.on () then
    Obs.Metrics.incr
      ~labels:
        [
          ( "kind",
            match (cb.writeback, cb.invalidate) with
            | true, true -> "writeback_invalidate"
            | true, false -> "writeback"
            | false, true -> "invalidate"
            | false, false -> "relinquish" );
        ]
      "snfs_callbacks_sent_total";
  if Obs.Trace.on () && Obs.Causal.keep ctx then
    server_event t "callback_send"
      (Obs.Causal.arg ctx
         [
           ("file", Obs.Trace.Int file);
           ("to", Obs.Trace.Str (Netsim.Net.Host.name target));
           ("writeback", Obs.Trace.Bool cb.writeback);
           ("invalidate", Obs.Trace.Bool cb.invalidate);
         ]);
  (* the flow event ties the induced callback work on the target
     client back to the inducing client operation *)
  if Obs.Causal.live ctx then
    Obs.Trace.flow_start
      ~ts:(Sim.Engine.now t.engine)
      ~track:(Netsim.Net.Host.name t.host)
      ~id:(Obs.Causal.id ctx) ();
  (* a short retry schedule: the opener waiting on this callback must
     not itself time out before we give up on a dead client *)
  match
    Netsim.Rpc.call t.rpc ~ctx
      ~config:(Netsim.Rpc.impatient (Netsim.Rpc.config t.rpc))
      ~src:t.host ~dst:target
      ~prog:(client_prog_for (Nfs.Wire.core_fsid t.core))
      ~proc:Nfs.Wire.p_callback (Xdr.Enc.to_bytes e)
  with
  | _reply ->
      if cb.writeback then
        Spritely.State_table.note_clean t.table ~file ~client:cb.target
  | exception Netsim.Rpc.Timeout _ -> (
      note_callback_failure t ~cause:"timeout";
      server_event t "callback_failed"
        [
          ("file", Obs.Trace.Int file);
          ("to", Obs.Trace.Str (Netsim.Net.Host.name target));
        ];
      (* with a lifecycle the dead target walks the whole ladder at
         once — demoted for silence, promoted because this very
         callback is a conflict, reaped; without one, the legacy blunt
         forget *)
      match t.lifecycle with
      | Some lc ->
          ignore
            (Spritely.Lifecycle.demote lc ~client:cb.target
               ~now:(Sim.Engine.now t.engine));
          ignore (Spritely.Lifecycle.note_conflict lc ~client:cb.target);
          reap t cb.target ~state:Spritely.Lifecycle.Expirable
      | None -> Spritely.State_table.forget_client t.table cb.target)

let perform_callback t ~ctx ~file (cb : Spritely.State_table.callback) =
  if conflict_with_suspect t ~file cb then ()
  else perform_callback_live t ~ctx ~file cb

let perform_callbacks t ~ctx ~file callbacks =
  if callbacks <> [] then
    Sim.Semaphore.with_unit t.callback_tokens (fun () ->
        List.iter (perform_callback t ~ctx ~file) callbacks)

(* The table is full of apparently-open files — usually delayed-close
   clients (Section 6.2). Ask the least-recently-active entry's clients
   to relinquish: a callback with neither flag set tells a client to
   release any withheld closes. Returns true if it is worth retrying
   the open. *)
let relinquish_for_space t ~ctx =
  match Spritely.State_table.least_recently_active_open t.table with
  | None -> false
  | Some (file, clients) ->
      perform_callbacks t ~ctx ~file
        (List.map
           (fun client ->
             {
               Spritely.State_table.target = client;
               writeback = false;
               invalidate = false;
             })
           clients);
      true

let in_grace t = Sim.Engine.now t.engine < t.grace_until

let with_file_lock t file f =
  let lock =
    match Hashtbl.find_opt t.file_locks file with
    | Some l -> l
    | None ->
        let l = Sim.Semaphore.create t.engine 1 in
        Hashtbl.replace t.file_locks file l;
        l
  in
  Sim.Semaphore.with_unit lock f

let handle_open t ~caller ~ctx d =
  let fh = Nfs.Wire.dec_fh d in
  let write_mode = Xdr.Dec.bool d in
  let e = Xdr.Enc.create () in
  if in_grace t && not (Hashtbl.mem t.recovered caller) then begin
    (* the consistency state may not change until recovery completes
       (Section 2.4); the client backs off and retries *)
    server_event t "grace_reject"
      [ ("file", Obs.Trace.Int fh.Nfs.Wire.ino);
        ("caller", Obs.Trace.Int caller) ];
    Nfs.Wire.enc_status e (Error Localfs.Again);
    { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }
  end
  else begin
  with_file_lock t fh.Nfs.Wire.ino @@ fun () ->
  (match Localfs.getattr ~ctx (Nfs.Wire.core_fs t.core) fh.Nfs.Wire.ino with
  | attrs -> (
      let rec try_open retried =
        match
          Spritely.State_table.open_file t.table ~file:fh.Nfs.Wire.ino
            ~client:caller ~mode:(mode_of_flag write_mode)
        with
        | result ->
            note_state t ~file:fh.Nfs.Wire.ino;
            (* the opener must not see the file until the other clients'
               dirty blocks are back and their caches are off *)
            perform_callbacks t ~ctx ~file:fh.Nfs.Wire.ino
              result.Spritely.State_table.callbacks;
            (* attributes may have changed during the write-backs *)
            let attrs =
              try Localfs.getattr ~ctx (Nfs.Wire.core_fs t.core) fh.Nfs.Wire.ino
              with Localfs.Error _ -> attrs
            in
            Nfs.Wire.enc_status e (Ok ());
            Xdr.Enc.bool e result.Spritely.State_table.cache_enabled;
            Xdr.Enc.uint32 e result.Spritely.State_table.version;
            Xdr.Enc.uint32 e result.Spritely.State_table.prev_version;
            Nfs.Wire.enc_attrs e attrs
        | exception Spritely.State_table.Table_full ->
            if (not retried) && relinquish_for_space t ~ctx then try_open true
            else Nfs.Wire.enc_status e (Error Localfs.Stale)
      in
      try_open false)
  | exception Localfs.Error err -> Nfs.Wire.enc_status e (Error err));
  { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }
  end

let handle_close t ~caller d =
  let fh = Nfs.Wire.dec_fh d in
  let write_mode = Xdr.Dec.bool d in
  (* a close the server does not know about (it rebooted, or reclaimed
     the entry) is harmless; tolerate it *)
  (try
     Spritely.State_table.close_file t.table ~file:fh.Nfs.Wire.ino
       ~client:caller ~mode:(mode_of_flag write_mode);
     note_state t ~file:fh.Nfs.Wire.ino
   with Invalid_argument _ -> ());
  let e = Xdr.Enc.create () in
  Nfs.Wire.enc_status e (Ok ());
  { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }

let handle_ping t =
  let e = Xdr.Enc.create () in
  Nfs.Wire.enc_status e (Ok ());
  Xdr.Enc.uint32 e (Netsim.Net.Host.boot_epoch t.host);
  { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }

(* recovery: one client's statement of everything it holds *)
let handle_reopen t ~caller d =
  Hashtbl.replace t.recovered caller ();
  let n = Xdr.Dec.uint32 d in
  server_event t "reopen_merge"
    [ ("caller", Obs.Trace.Int caller); ("files", Obs.Trace.Int n) ];
  for _ = 1 to n do
    let file = Xdr.Dec.uint32 d in
    let readers = Xdr.Dec.uint32 d in
    let writers = Xdr.Dec.uint32 d in
    let can_cache = Xdr.Dec.bool d in
    let dirty = Xdr.Dec.bool d in
    let version = Xdr.Dec.uint32 d in
    Spritely.State_table.merge_report t.table
      {
        Spritely.State_table.r_client = caller;
        r_file = file;
        r_readers = readers;
        r_writers = writers;
        r_can_cache = can_cache;
        r_dirty = dirty;
        r_version = version;
      }
  done;
  let e = Xdr.Enc.create () in
  Nfs.Wire.enc_status e (Ok ());
  { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }

(* the default thread count leaves headroom for open handlers parked on
   a file lock while another open's callbacks complete; at least one
   thread must stay free to serve the write-backs those callbacks
   provoke (Section 3.2's N-1 rule, extended) *)
let serve rpc host ?(threads = 8) ?(max_table_entries = 1000)
    ?(recovery_grace = 0.0) ~fsid fs =
  if threads < 2 then invalid_arg "Snfs_server.serve: need at least 2 threads";
  let engine = Netsim.Net.engine (Netsim.Rpc.net rpc) in
  let rec t =
    lazy
      (let core =
         Nfs.Wire.make_server_core ~fsid fs
           ~on_remove:(fun ~ino ~ctx:_ ->
             let tt = Lazy.force t in
             Spritely.State_table.remove_file tt.table ~file:ino)
           ()
       in
       let handler ~caller ~ctx ~proc dec =
         let tt = Lazy.force t in
         let caller_addr = Netsim.Net.Host.addr caller in
         (match Hashtbl.find_opt tt.last_heard caller_addr with
         | Some cell -> cell := Sim.Engine.now engine
         | None ->
             Hashtbl.replace tt.last_heard caller_addr
               (ref (Sim.Engine.now engine)));
         (* any RPC from a Courtesy client revives it: it resumes with
            its state intact, no reopen storm. The [nonactive] guard
            keeps this off the hot path while nobody is suspect. *)
         (match tt.lifecycle with
         | Some lc when Spritely.Lifecycle.nonactive lc > 0 ->
             if Spritely.Lifecycle.revive lc ~client:caller_addr then begin
               tt.revivals <- tt.revivals + 1;
               if Obs.Metrics.on () then
                 Obs.Metrics.incr
                   ~labels:[ ("via", "rpc") ]
                   "snfs_laundromat_revivals_total";
               server_event tt "client_revived"
                 [ ("client", Obs.Trace.Int caller_addr);
                   ("via", Obs.Trace.Str "rpc") ]
             end
         | _ -> ());
         if proc = Nfs.Wire.p_open then
           handle_open tt ~caller:caller_addr ~ctx dec
         else if proc = Nfs.Wire.p_close then
           handle_close tt ~caller:caller_addr dec
         else if proc = Nfs.Wire.p_ping then handle_ping tt
         else if proc = Nfs.Wire.p_reopen then
           handle_reopen tt ~caller:caller_addr dec
         else
           match
             Nfs.Wire.handle_basic tt.core ~caller:caller_addr ~ctx ~proc dec
           with
           | Some reply -> reply
           | None ->
               let e = Xdr.Enc.create () in
               Nfs.Wire.enc_status e (Error Localfs.Stale);
               { Netsim.Rpc.data = Xdr.Enc.to_bytes e; bulk = 0 }
       in
       let service = Netsim.Rpc.serve rpc host ~prog ~threads handler in
       {
         rpc;
         host;
         core;
         table = Spritely.State_table.create ~max_entries:max_table_entries ();
         max_table_entries;
         service;
         callback_tokens = Sim.Semaphore.create engine (threads - 1);
         callbacks_sent = 0;
         callbacks_failed = 0;
         last_heard = Hashtbl.create 16;
         file_locks = Hashtbl.create 64;
         clients_reaped = 0;
         lifecycle = None;
         laundromat_runs = 0;
         demotions = 0;
         revivals = 0;
         reaped_courtesy = 0;
         reaped_expirable = 0;
         recovery_grace;
         grace_until = 0.0;
         recovered = Hashtbl.create 16;
         engine;
       })
  in
  let t = Lazy.force t in
  (* volatile consistency state dies with the server process *)
  Netsim.Rpc.set_on_restart t.service (fun () ->
      t.table <-
        Spritely.State_table.create ~max_entries:t.max_table_entries ();
      t.callbacks_sent <- 0;
      t.callbacks_failed <- 0;
      Hashtbl.reset t.recovered;
      (* the courtesy ledger is volatile too: a rebooted server starts
         trusting everyone again and relearns silence from scratch *)
      (match t.lifecycle with
      | Some lc -> Spritely.Lifecycle.reset lc
      | None -> ());
      t.grace_until <- Sim.Engine.now engine +. t.recovery_grace);
  t

let deliver_callbacks ?(ctx = Obs.Causal.none) t ~file callbacks =
  perform_callbacks t ~ctx ~file callbacks

(* clients currently holding any state in the table *)
let clients_with_state t =
  List.concat_map
    (fun file ->
      let openers =
        List.map (fun (c, _, _) -> c) (Spritely.State_table.openers t.table ~file)
      in
      match Spritely.State_table.last_writer t.table ~file with
      | Some w -> w :: openers
      | None -> openers)
    (Spritely.State_table.files t.table)
  |> List.sort_uniq compare

(* The periodic laundromat (Section 2.4's "tracking the passage of
   time", done the way Linux NFSD does it). Each pass:
   1. pings every Active client with state that has been silent at
      least [lease] seconds; no answer demotes it to Courtesy with all
      its state retained;
   2. pings every Courtesy client, so one that was merely partitioned
      is revived as soon as the network heals, even if it never sends
      traffic of its own;
   3. reaps what is due: every Expirable client (a conflict claimed
      it) and every Courtesy client older than [courtesy_lifetime] —
      courtesy clients cannot linger indefinitely. *)
let start_laundromat ?(lease = 120.0) ?(courtesy_lifetime = 300.0) t ~interval =
  if t.lifecycle <> None then
    invalid_arg "Snfs_server.start_laundromat: already started";
  let engine = Netsim.Net.engine (Netsim.Rpc.net t.rpc) in
  let lc = Spritely.Lifecycle.create ~courtesy_lifetime () in
  t.lifecycle <- Some lc;
  Obs.Metrics.register_poll
    ~labels:[ ("state", "active") ]
    "snfs_clients"
    (fun () ->
      let suspects = Spritely.Lifecycle.nonactive lc in
      float_of_int (max 0 (List.length (clients_with_state t) - suspects)));
  Obs.Metrics.register_poll
    ~labels:[ ("state", "courtesy") ]
    "snfs_clients"
    (fun () -> float_of_int (fst (Spritely.Lifecycle.counts lc)));
  Obs.Metrics.register_poll
    ~labels:[ ("state", "expirable") ]
    "snfs_clients"
    (fun () -> float_of_int (snd (Spritely.Lifecycle.counts lc)));
  let probe client =
    let target = Netsim.Net.Host.by_addr (Netsim.Rpc.net t.rpc) client in
    let e = Xdr.Enc.create () in
    match
      Netsim.Rpc.call t.rpc
        ~config:(Netsim.Rpc.impatient (Netsim.Rpc.config t.rpc))
        ~src:t.host ~dst:target
        ~prog:(client_prog_for (Nfs.Wire.core_fsid t.core))
        ~proc:Nfs.Wire.p_ping (Xdr.Enc.to_bytes e)
    with
    | _reply -> (
        match Hashtbl.find_opt t.last_heard client with
        | Some cell ->
            cell := Sim.Engine.now engine;
            true
        | None ->
            Hashtbl.replace t.last_heard client (ref (Sim.Engine.now engine));
            true)
    | exception Netsim.Rpc.Timeout _ -> false
  in
  let rec loop () =
    Sim.Engine.sleep engine interval;
    t.laundromat_runs <- t.laundromat_runs + 1;
    if Obs.Metrics.on () then Obs.Metrics.incr "snfs_laundromat_runs_total";
    let now = Sim.Engine.now engine in
    let silent_too_long client =
      match Hashtbl.find_opt t.last_heard client with
      | Some heard -> now -. !heard >= lease
      | None -> true
    in
    (* 1: silent Active clients are probed; the unresponsive become
       Courtesy, their opens and dirty state retained *)
    List.iter
      (fun client ->
        if
          Spritely.Lifecycle.state lc ~client = Spritely.Lifecycle.Active
          && silent_too_long client
          && not (probe client)
        then
          if Spritely.Lifecycle.demote lc ~client ~now:(Sim.Engine.now engine)
          then begin
            t.demotions <- t.demotions + 1;
            if Obs.Metrics.on () then
              Obs.Metrics.incr "snfs_laundromat_demotions_total";
            server_event t "client_demoted"
              [ ("client", Obs.Trace.Int client) ]
          end)
      (clients_with_state t);
    (* 2: Courtesy clients are probed too — a healed partition revives
       one even before it sends traffic of its own *)
    List.iter
      (fun (client, state, _since) ->
        if state = Spritely.Lifecycle.Courtesy && probe client then
          if Spritely.Lifecycle.revive lc ~client then begin
            t.revivals <- t.revivals + 1;
            if Obs.Metrics.on () then
              Obs.Metrics.incr
                ~labels:[ ("via", "probe") ]
                "snfs_laundromat_revivals_total";
            server_event t "client_revived"
              [ ("client", Obs.Trace.Int client);
                ("via", Obs.Trace.Str "probe") ]
          end)
      (Spritely.Lifecycle.to_list lc);
    (* 3: reap what is due (with courtesy_lifetime = 0 a client
       demoted in step 1 is due in the same pass — the legacy
       single-step reaper semantics) *)
    List.iter
      (fun (client, state) -> reap t client ~state)
      (Spritely.Lifecycle.due lc ~now:(Sim.Engine.now engine));
    loop ()
  in
  Sim.Engine.spawn engine ~name:"snfs.laundromat" loop

let start_client_reaper ?(idle = 120.0) t ~interval =
  start_laundromat ~lease:idle ~courtesy_lifetime:0.0 t ~interval

type lifecycle_stats = {
  laundromat_runs : int;
  demotions : int;
  revivals : int;
  reaped_courtesy : int;
  reaped_expirable : int;
}

let lifecycle_stats (t : t) =
  {
    laundromat_runs = t.laundromat_runs;
    demotions = t.demotions;
    revivals = t.revivals;
    reaped_courtesy = t.reaped_courtesy;
    reaped_expirable = t.reaped_expirable;
  }

let client_state t ~client =
  match t.lifecycle with
  | None -> Spritely.Lifecycle.Active
  | Some lc -> Spritely.Lifecycle.state lc ~client

let clients_reaped t = t.clients_reaped

let core t = t.core

let host t = t.host
let root_fh t = Nfs.Wire.root_fh t.core
let service t = t.service
let counters t = Netsim.Rpc.counters t.service
let state_table t = t.table
let callbacks_sent t = t.callbacks_sent
let callbacks_failed t = t.callbacks_failed
