type t = {
  mutable mounts : (string list * Fs.t) list; (* components of mount point *)
  mutable name_cache : (string, Fs.vn) Hashtbl.t option;
}

let create () = { mounts = []; name_cache = None }

let components path =
  if String.length path = 0 || path.[0] <> '/' then
    invalid_arg (Printf.sprintf "Mount: path %S is not absolute" path);
  String.split_on_char '/' path |> List.filter (fun c -> c <> "")

let mount t ~at fs =
  let comps = components at in
  if List.exists (fun (c, _) -> c = comps) t.mounts then
    invalid_arg (Printf.sprintf "Mount.mount: %s already mounted" at);
  (* keep longest mounts first so prefix matching finds the deepest *)
  t.mounts <-
    List.sort
      (fun (a, _) (b, _) -> compare (List.length b) (List.length a))
      ((comps, fs) :: t.mounts)

let enable_name_cache t =
  if t.name_cache = None then t.name_cache <- Some (Hashtbl.create 256)

let rec strip_prefix prefix l =
  match (prefix, l) with
  | [], rest -> Some rest
  | p :: ps, x :: xs when p = x -> strip_prefix ps xs
  | _ -> None

let find_mount t comps =
  let rec try_mounts = function
    | [] -> invalid_arg "Mount: no file system mounted at /"
    | (mcomps, fs) :: rest -> (
        match strip_prefix mcomps comps with
        | Some remainder -> (fs, remainder)
        | None -> try_mounts rest)
  in
  try_mounts t.mounts

let rec walk t fs dir remaining walked =
  match remaining with
  | [] -> dir
  | name :: rest ->
      let walked = name :: walked in
      let child =
        match t.name_cache with
        | None -> fs.Fs.lookup ~dir name
        | Some cache -> (
            let key =
              fs.Fs.fs_name ^ ":" ^ String.concat "/" (List.rev walked)
            in
            match Hashtbl.find_opt cache key with
            | Some vn -> vn
            | None ->
                let vn = fs.Fs.lookup ~dir name in
                Hashtbl.replace cache key vn;
                vn)
      in
      walk t fs child rest walked

let resolve t path =
  let comps = components path in
  let fs, remainder = find_mount t comps in
  walk t fs (fs.Fs.root ()) remainder []

let resolve_parent t path =
  let comps = components path in
  match List.rev comps with
  | [] -> invalid_arg "Mount.resolve_parent: path is a mount root"
  | name :: rev_parent ->
      let parent_comps = List.rev rev_parent in
      let fs, remainder = find_mount t (parent_comps @ [ name ]) in
      (* the final component must stay within the same mount *)
      (match remainder with
      | [] -> invalid_arg "Mount.resolve_parent: path is a mount point"
      | _ -> ());
      let fs', parent_remainder = find_mount t parent_comps in
      if fs' != fs then invalid_arg "Mount.resolve_parent: crosses a mount";
      let dir = walk t fs' (fs'.Fs.root ()) parent_remainder [] in
      (dir, name)

let uncache t path =
  match t.name_cache with
  | None -> ()
  | Some cache ->
      let comps = components path in
      let fs, remainder = find_mount t comps in
      let key = fs.Fs.fs_name ^ ":" ^ String.concat "/" remainder in
      Hashtbl.remove cache key
