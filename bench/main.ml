(* The benchmark harness.

   Part 1 regenerates every table and figure from the paper's
   evaluation (Section 5) and prints them with the paper's numbers or
   claims alongside — this is the reproduction artifact.

   Part 2 runs Bechamel microbenchmarks: one Test.make per paper
   table/figure (measuring the cost of regenerating it, i.e. the whole
   simulated experiment), plus microbenchmarks of the core data
   structures (state-table transitions, XDR codecs, the block cache,
   the event queue) and ablation benches for the design choices
   DESIGN.md calls out. *)

open Bechamel
open Toolkit

(* ---- part 1: the reproduction ---- *)

let tables : (string * (unit -> string)) list =
  [
    ("Table 5-1", Experiments.Andrew_exp.table_5_1);
    ("Table 5-2", Experiments.Andrew_exp.table_5_2);
    ("Table 5-3", Experiments.Sort_exp.table_5_3);
    ("Table 5-4", Experiments.Sort_exp.table_5_4);
    ("Table 5-5", Experiments.Sort_exp.table_5_5);
    ("Table 5-6", Experiments.Sort_exp.table_5_6);
    ("Figures 5-1 and 5-2", Experiments.Andrew_exp.figures_5_1_and_5_2);
    ("Section 5.3 microbenchmark", Experiments.Sort_exp.reread_check);
  ]

let reproduce () =
  print_endline
    "=====================================================================";
  print_endline
    " Spritely NFS (Srinivasan & Mogul, SOSP 1989) - full reproduction";
  print_endline
    "=====================================================================\n";
  List.iter
    (fun (_, f) ->
      print_string (f ());
      print_newline ())
    tables

(* ---- part 1b: per-procedure latency ---- *)

(* where the time goes: one traced SNFS Andrew run, rendered as the
   per-procedure round-trip percentile table *)
let latency_section () =
  print_endline
    "=====================================================================";
  print_endline " Latency: RPC round-trip percentiles, SNFS Andrew run";
  print_endline
    "=====================================================================\n";
  let latencies =
    Experiments.Driver.run (fun engine ->
        let tb =
          Experiments.Testbed.create engine
            ~protocol:
              (Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config)
            ~tmp:Experiments.Testbed.Tmp_remote ()
        in
        let ctx = Experiments.Testbed.ctx tb in
        let config = Workload.Andrew.default_config in
        let tree = Workload.Andrew.setup ctx config in
        ignore (Workload.Andrew.run ctx config tree);
        Netsim.Rpc.latencies (Experiments.Testbed.rpc tb))
  in
  print_string (Obs.Latency.table latencies);
  print_newline ()

(* ---- part 1c: metrics flight report ---- *)

(* the same SNFS Andrew run seen through the metrics registry: resource
   utilization, cache behaviour and consistency actions in one place *)
let metrics_section () =
  print_endline
    "=====================================================================";
  print_endline " Metrics: registry flight report, SNFS Andrew run";
  print_endline
    "=====================================================================\n";
  let m = Obs.Metrics.create () in
  let latencies =
    Experiments.Driver.run ~metrics:m (fun engine ->
        let tb =
          Experiments.Testbed.create engine
            ~protocol:
              (Experiments.Testbed.Snfs_proto Snfs.Snfs_client.default_config)
            ~tmp:Experiments.Testbed.Tmp_remote ()
        in
        let ctx = Experiments.Testbed.ctx tb in
        let config = Workload.Andrew.default_config in
        let tree = Workload.Andrew.setup ctx config in
        ignore (Workload.Andrew.run ctx config tree);
        Netsim.Rpc.latencies (Experiments.Testbed.rpc tb))
  in
  print_string (Obs.Metrics.report ~latency:latencies m)

(* ---- part 2: Bechamel ---- *)

(* one Test.make per table: the workload is the entire simulated
   experiment that regenerates it *)
let table_tests =
  List.map
    (fun (name, f) ->
      Test.make ~name
        (Staged.stage (fun () -> ignore (Sys.opaque_identity (f ())))))
    tables

(* microbenchmarks of the structures everything else is built on *)
let micro_tests =
  [
    Test.make ~name:"state_table open+close x50"
      (Staged.stage (fun () ->
           let t = Spritely.State_table.create () in
           for file = 1 to 50 do
             ignore
               (Spritely.State_table.open_file t ~file ~client:1
                  ~mode:Spritely.State_table.Write);
             Spritely.State_table.close_file t ~file ~client:1
               ~mode:Spritely.State_table.Write
           done));
    Test.make ~name:"state_table write-sharing transition"
      (Staged.stage (fun () ->
           let t = Spritely.State_table.create () in
           ignore
             (Spritely.State_table.open_file t ~file:1 ~client:1
                ~mode:Spritely.State_table.Read);
           ignore
             (Spritely.State_table.open_file t ~file:1 ~client:2
                ~mode:Spritely.State_table.Write)));
    Test.make ~name:"xdr attrs round trip"
      (Staged.stage (fun () ->
           let attrs =
             {
               Localfs.ino = 42;
               gen = 1;
               ftype = Localfs.File;
               size = 123456;
               nlink = 1;
               mtime = 100.5;
               ctime = 99.0;
             }
           in
           let e = Xdr.Enc.create () in
           Nfs.Wire.enc_attrs e attrs;
           let d = Xdr.Dec.of_bytes (Xdr.Enc.to_bytes e) in
           ignore (Sys.opaque_identity (Nfs.Wire.dec_attrs d))));
    Test.make ~name:"eventq push+pop x1000"
      (Staged.stage (fun () ->
           let q = Sim.Eventq.create () in
           for i = 0 to 999 do
             Sim.Eventq.push q
               ~time:(float_of_int ((i * 7919) mod 1000))
               ~seq:i
               (fun () -> ())
           done;
           while not (Sim.Eventq.is_empty q) do
             ignore (Sim.Eventq.pop q)
           done));
    Test.make ~name:"sim 10k sleeping processes"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           for i = 1 to 10_000 do
             Sim.Engine.spawn e (fun () ->
                 Sim.Engine.sleep e (float_of_int (i mod 97)))
           done;
           Sim.Engine.run e));
    Test.make ~name:"blockcache write+flush x100"
      (Staged.stage (fun () ->
           let e = Sim.Engine.create () in
           Sim.Engine.spawn e (fun () ->
               let backend =
                 {
                   Blockcache.Cache.read_block =
                     (fun ~ctx:_ ~file:_ ~index:_ -> (0, 0));
                   write_block = (fun ~ctx:_ ~file:_ ~index:_ ~stamp:_ ~len:_ -> ());
                 }
               in
               let c =
                 Blockcache.Cache.create e ~name:"bench" ~capacity_blocks:128
                   ~block_size:4096 backend
               in
               for i = 0 to 99 do
                 Blockcache.Cache.write c ~file:1 ~index:i ~stamp:i ~len:4096
                   `Delayed
               done;
               Blockcache.Cache.flush_all c);
           Sim.Engine.run e));
  ]

(* extension experiments, one Test.make each *)
let extension_tests =
  [
    Test.make ~name:"extension client scaling (4 clients, SNFS)"
      (Staged.stage (fun () ->
           ignore
             (Sys.opaque_identity
                (Experiments.Scaling_exp.run
                   ~protocol:
                     (Experiments.Testbed.Snfs_proto
                        Snfs.Snfs_client.default_config)
                   ~clients:4 ()))));
    Test.make ~name:"extension trace-driven mix (SNFS)"
      (Staged.stage (fun () ->
           ignore
             (Sys.opaque_identity
                (Experiments.Trace_exp.table ()))));
    Test.make ~name:"extension shared-database (4 protocols)"
      (Staged.stage (fun () ->
           ignore (Sys.opaque_identity (Experiments.Sharing_exp.table ()))));
  ]

(* ablation benches: the design choices DESIGN.md calls out; each runs
   a full Andrew simulation under the variant *)
let ablation_tests =
  let andrew protocol () =
    ignore
      (Sys.opaque_identity
         (Experiments.Andrew_exp.run_variant
            {
              Experiments.Andrew_exp.label = "bench";
              protocol;
              tmp = Experiments.Testbed.Tmp_remote;
            }))
  in
  [
    Test.make ~name:"ablation NFS with invalidate-on-close bug"
      (Staged.stage
         (andrew (Experiments.Testbed.Nfs_proto Nfs.Nfs_client.default_config)));
    Test.make ~name:"ablation NFS bug fixed"
      (Staged.stage
         (andrew
            (Experiments.Testbed.Nfs_proto
               { Nfs.Nfs_client.default_config with invalidate_on_close = false })));
    Test.make ~name:"ablation SNFS delayed close (sec 6.2)"
      (Staged.stage
         (andrew
            (Experiments.Testbed.Snfs_proto
               { Snfs.Snfs_client.default_config with delayed_close = true })));
    Test.make ~name:"ablation RFS baseline (sec 2.5)"
      (Staged.stage
         (andrew (Experiments.Testbed.Rfs_proto Rfs.Rfs_client.default_config)));
  ]

let run_bechamel tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 1.0) ~stabilize:false
      ~kde:None ()
  in
  let raw =
    Benchmark.all cfg instances (Test.make_grouped ~name:"spritely" tests)
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name result acc ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> (name, est) :: acc
        | Some _ | None -> (name, Float.nan) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let fmt_time ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
    else Printf.sprintf "%.0f ns" ns
  in
  print_string
    (Stats.Table.render
       ~header:[ "benchmark"; "host time/run" ]
       (List.map (fun (name, est) -> [ name; fmt_time est ]) rows))

let () =
  reproduce ();
  latency_section ();
  metrics_section ();
  print_endline
    "=====================================================================";
  print_endline " Bechamel microbenchmarks (host-CPU cost, not simulated time)";
  print_endline
    "=====================================================================\n";
  run_bechamel (micro_tests @ table_tests @ ablation_tests @ extension_tests)
