(* Chrome trace-event JSON (the "JSON Array Format" with a
   [traceEvents] wrapper), loadable in chrome://tracing and Perfetto.

   Spans become async "b"/"e" pairs keyed by (cat, id) — unlike "B"/"E"
   duration events they need no per-thread stack discipline, which
   matters because one host runs many simulated processes. Instants
   become "i" events; flow events become "s"/"f" pairs keyed by the
   inducing op id (with "bp":"e" so the arrow binds to the enclosing
   slice), which is how Perfetto draws callback-causality arrows.
   Tracks are mapped to tids in order of first appearance, with "M"
   metadata events carrying the names; a "trace_config" metadata entry
   records the tracer's sample rate and id base so an analyzer can
   scale sampled numbers back up.

   All numbers are printed with fixed formats so equal traces render to
   equal bytes. *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_value buf = function
  | Trace.Str s -> add_escaped buf s
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> Buffer.add_string buf (Printf.sprintf "%.6f" f)
  | Trace.Bool b -> Buffer.add_string buf (if b then "true" else "false")

let add_args buf args =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ",";
      add_escaped buf k;
      Buffer.add_string buf ":";
      add_value buf v)
    args;
  Buffer.add_string buf "}"

(* microseconds, the unit the trace viewers expect *)
let add_ts buf ts = Buffer.add_string buf (Printf.sprintf "%.3f" (ts *. 1e6))

let to_string tr =
  let events = Trace.events tr in
  let tids = Hashtbl.create 16 in
  let order = ref [] in
  let tid_of track =
    match Hashtbl.find_opt tids track with
    | Some id -> id
    | None ->
        let id = Hashtbl.length tids + 1 in
        Hashtbl.replace tids track id;
        order := (track, id) :: !order;
        id
  in
  (* assign tids in chronological first-appearance order *)
  List.iter (fun (e : Trace.event) -> ignore (tid_of e.track)) events;
  let buf = Buffer.create (4096 + (128 * List.length events)) in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  sep ();
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"trace_config\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"sample_every\":%d,\"id_base\":%d}}"
       (Trace.sample_every tr) (Trace.id_base tr));
  List.iter
    (fun (track, tid) ->
      sep ();
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":"
           tid);
      add_escaped buf track;
      Buffer.add_string buf "}}")
    (List.rev !order);
  List.iter
    (fun (e : Trace.event) ->
      sep ();
      Buffer.add_string buf "{\"name\":";
      add_escaped buf e.name;
      Buffer.add_string buf ",\"cat\":";
      add_escaped buf e.cat;
      let ph =
        match e.kind with
        | Trace.Begin -> "b"
        | Trace.End -> "e"
        | Trace.Instant -> "i"
        | Trace.Flow_start -> "s"
        | Trace.Flow_end -> "f"
      in
      Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%s\"" ph);
      (match e.kind with
      | Trace.Begin | Trace.End | Trace.Flow_start ->
          Buffer.add_string buf (Printf.sprintf ",\"id\":%d" e.id)
      | Trace.Flow_end ->
          (* bind the arrow head to the enclosing slice's end *)
          Buffer.add_string buf
            (Printf.sprintf ",\"id\":%d,\"bp\":\"e\"" e.id)
      | Trace.Instant -> Buffer.add_string buf ",\"s\":\"t\"");
      Buffer.add_string buf ",\"ts\":";
      add_ts buf e.ts;
      Buffer.add_string buf
        (Printf.sprintf ",\"pid\":1,\"tid\":%d,\"args\":" (tid_of e.track));
      add_args buf e.args;
      Buffer.add_string buf "}")
    events;
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buf

let write_file tr ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string tr))
