type t = {
  util : Stats.Timeseries.t;
  calls : Stats.Timeseries.t;
  reads : Stats.Timeseries.t;
  writes : Stats.Timeseries.t;
}

let attach engine ~host ~service ~bin =
  let m =
    match Obs.Metrics.installed () with
    | Some m -> m
    | None ->
        invalid_arg
          "Monitor.attach: requires an installed Obs.Metrics registry (run \
           the experiment with Driver.run ~metrics)"
  in
  let t =
    {
      util = Stats.Timeseries.create ~bin "cpu-util";
      calls = Stats.Timeseries.create ~bin "calls";
      reads = Stats.Timeseries.create ~bin "reads";
      writes = Stats.Timeseries.create ~bin "writes";
    }
  in
  (* all series are relative to the attach instant *)
  let t0 = Sim.Engine.now engine in
  let prog = Netsim.Rpc.service_prog service in
  let server = Netsim.Net.Host.name (Netsim.Rpc.service_host service) in
  let cpu_name = Sim.Resource.name (Netsim.Net.Host.cpu host) in
  let busy () =
    Obs.Metrics.gauge_value m "sim_resource_busy_seconds"
      ~labels:[ ("resource", cpu_name) ]
  in
  let calls_of proc =
    Obs.Metrics.counter_value m "rpc_server_calls_total"
      ~labels:[ ("host", server); ("prog", prog); ("proc", proc) ]
  in
  (* every proc executed by this service, i.e. this prog on this host
     (callback progs served by clients carry other labels) *)
  let total_calls () =
    List.fold_left
      (fun acc (labels, v) ->
        if List.mem ("host", server) labels && List.mem ("prog", prog) labels
        then acc + v
        else acc)
      0
      (Obs.Metrics.counters_with m "rpc_server_calls_total")
  in
  (* per-bin deltas of the registry's cumulative instruments, attributed
     to the bin that just ended *)
  let rec sample (b0, c0, r0, w0) () =
    Sim.Engine.sleep engine bin;
    let time = Sim.Engine.now engine -. t0 -. (bin /. 2.0) in
    let b = busy ()
    and c = total_calls ()
    and r = calls_of Nfs.Wire.p_read
    and w = calls_of Nfs.Wire.p_write in
    Stats.Timeseries.add t.util ~time (b -. b0);
    Stats.Timeseries.add t.calls ~time (float_of_int (c - c0));
    Stats.Timeseries.add t.reads ~time (float_of_int (r - r0));
    Stats.Timeseries.add t.writes ~time (float_of_int (w - w0));
    sample (b, c, r, w) ()
  in
  Sim.Engine.spawn engine ~name:"monitor.sampler"
    (sample
       (busy (), total_calls (), calls_of Nfs.Wire.p_read,
        calls_of Nfs.Wire.p_write));
  t

let rows t ~until =
  let bin = Stats.Timeseries.bin_width t.util in
  let nbins = int_of_float (ceil (until /. bin)) in
  List.init nbins (fun i ->
      [
        float_of_int i *. bin;
        Stats.Timeseries.value t.util i /. bin;
        Stats.Timeseries.rate t.calls i;
        Stats.Timeseries.rate t.reads i;
        Stats.Timeseries.rate t.writes i;
      ])
