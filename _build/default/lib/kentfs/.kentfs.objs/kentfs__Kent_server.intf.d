lib/kentfs/kent_server.mli: Localfs Netsim Nfs Stats
