(** Flight recorder: last-N-events ring dumped on failure.

    Part of the observability budget: a full trace of a fleet-scale
    run is too large to keep, but the {e last} few thousand events are
    exactly what a post-mortem needs. {!arm} installs a ring-limited
    {!Trace} into the ordinary per-domain tracer slot (a no-op when a
    real tracer is already installed), so every existing probe site
    feeds the ring at the usual cost. On an oracle or invariant
    failure the harness calls {!capture}, which snapshots the ring as
    Chrome JSON; {!last} retrieves it for writing to disk. The module
    itself performs no I/O, so library determinism is untouched. *)

(** Arm the recorder on this domain with a ring of [limit] events
    (default 4096). No-op when already armed or when a full tracer is
    installed. *)
val arm : ?limit:int -> unit -> unit

val armed : unit -> bool

(** Uninstall the ring (if we installed it) and forget any snapshot. *)
val disarm : unit -> unit

(** Snapshot the current ring under [reason]. No-op when not armed.
    The latest capture wins. *)
val capture : reason:string -> unit

(** The most recent capture, as [(reason, chrome_json)]. *)
val last : unit -> (string * string) option
