lib/nfs/nfs_client.ml: Blockcache Float Hashtbl Lazy Localfs Netsim Nfs_server Sim Vfs Wire
