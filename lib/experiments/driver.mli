(** Runs one experiment in a fresh simulation.

    [run f] creates an engine, executes [f] as the initial simulation
    process (so it may block on I/O), stops the engine when [f]
    returns (background daemons would otherwise keep it alive forever),
    and returns [f]'s result.

    With [?trace], the tracer is installed for the duration of the run
    (and uninstalled afterwards, even on exception): every instrumented
    layer — rpc, net, caches, protocol clients and servers — appends
    its events to it.

    With [?metrics], the registry is installed the same way — before
    the engine is created, so creation-time instruments (resource
    polls, cache occupancy) register properly — unless the caller
    already installed that same registry around a larger scope, in
    which case it is left alone. Whenever a registry is installed
    (through this argument or by the caller), a sampler daemon
    snapshots it into time-series bins every [?sample_interval]
    (default 5.0) simulated seconds; sampling is started on first use
    and continues across runs sharing one registry. *)

(* snfs-lint: allow interface-drift — documented default for custom experiment drivers *)
val default_sample_interval : float

val run :
  ?trace:Obs.Trace.t ->
  ?metrics:Obs.Metrics.t ->
  ?sample_interval:float ->
  (Sim.Engine.t -> 'a) ->
  'a
