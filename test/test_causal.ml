(* Acceptance tests for the causal-tracing PR: the offline analyzer
   reconstructs complete per-operation trees from a traced SNFS
   write-sharing run, links every callback span to the client
   operation that induced it (Chrome flow events), renders its report
   deterministically, and the fleet-scale observability budget holds —
   metric label cardinality stays capped and head-sampled traces
   contain only complete operation trees. *)

let run_sim f =
  let e = Sim.Engine.create () in
  let result = ref None in
  Sim.Engine.spawn e ~name:"test-main" (fun () ->
      result := Some (f e);
      Sim.Engine.stop e);
  Sim.Engine.run e;
  match !result with
  | Some v -> v
  | None -> Alcotest.fail "simulation main process did not complete"

(* ---- the write-sharing SNFS world: two clients ping-pong a file so
   the server issues callbacks on every conflicting open ---- *)

let scenario e =
  let net = Netsim.Net.create e () in
  let rpc = Netsim.Rpc.create net () in
  let server_host = Netsim.Net.Host.create net "server" in
  let server_disk = Diskm.Disk.create e "server-disk" in
  let server_fs =
    Localfs.create e ~name:"srvfs" ~disk:server_disk ~cache_blocks:896
      ~meta_policy:`Sync ()
  in
  let server = Snfs.Snfs_server.serve rpc server_host ~fsid:2 server_fs in
  let client name =
    let host = Netsim.Net.Host.create net name in
    let c =
      Snfs.Snfs_client.mount rpc ~client:host ~server:server_host
        ~root:(Snfs.Snfs_server.root_fh server) ~name ()
    in
    let mounts = Vfs.Mount.create () in
    Vfs.Mount.mount mounts ~at:"/" (Snfs.Snfs_client.fs c);
    mounts
  in
  let m1 = client "c1" in
  let m2 = client "c2" in
  let fd = Vfs.Fileio.creat m1 "/f" in
  ignore (Vfs.Fileio.write fd ~len:16384);
  Vfs.Fileio.close fd;
  ignore (Vfs.Fileio.read_file m2 "/f");
  let wfd = Vfs.Fileio.openf m1 "/f" Vfs.Fs.Write_only in
  ignore (Vfs.Fileio.write wfd ~len:4096);
  Sim.Engine.sleep e 0.5;
  ignore (Vfs.Fileio.read_file m2 "/f");
  Vfs.Fileio.close wfd;
  Sim.Engine.sleep e 1.0

let analyzed ?sample_every () =
  let tr = Obs.Trace.create ?sample_every () in
  Obs.Trace.with_tracer tr (fun () -> run_sim scenario);
  Obs.Analyze.of_chrome ~label:"scenario" (Obs.Chrome.to_string tr)

(* ---- every callback is flow-linked to its inducing operation ---- *)

let test_callbacks_flow_linked () =
  let run = analyzed () in
  Alcotest.(check string) "protocol inferred" "snfs" run.Obs.Analyze.protocol;
  Alcotest.(check bool) "traced ops" true (run.Obs.Analyze.ops <> []);
  Alcotest.(check int) "complete trees" 0 run.Obs.Analyze.orphan_spans;
  Alcotest.(check bool)
    "write sharing induced callbacks" true
    (run.Obs.Analyze.callback_spans > 0);
  Alcotest.(check int)
    "every callback span flow-linked to its inducing op"
    run.Obs.Analyze.callback_spans run.Obs.Analyze.flow_linked;
  Alcotest.(check bool)
    "flow arrows recorded" true
    (run.Obs.Analyze.flow_starts > 0
    && run.Obs.Analyze.flow_ends > 0);
  (* the inducing operations actually charge consistency time *)
  let induced = List.filter (fun o -> o.Obs.Analyze.fanout > 0) run.Obs.Analyze.ops in
  Alcotest.(check bool) "some op has fan-out" true (induced <> []);
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "op %d (%s) charges consist time" o.Obs.Analyze.op_id
           o.Obs.Analyze.cls)
        true
        (o.Obs.Analyze.consist > 0.0))
    induced

(* ---- the analyzer report is a pure function of the workload ---- *)

let test_report_deterministic () =
  let report () = Obs.Analyze.report [ analyzed () ] in
  let a = report () and b = report () in
  Alcotest.(check bool) "report non-trivial" true (String.length a > 200);
  Alcotest.(check string) "two runs render byte-identically" a b

(* ---- head sampling keeps whole trees, drops whole trees ---- *)

let test_sampled_trees_complete () =
  let full = analyzed () in
  let sampled = analyzed ~sample_every:3 () in
  Alcotest.(check int)
    "sampling rate recorded" 3 sampled.Obs.Analyze.sample_every;
  Alcotest.(check int)
    "sampled trees still complete" 0 sampled.Obs.Analyze.orphan_spans;
  let n_full = List.length full.Obs.Analyze.ops in
  let n_sampled = List.length sampled.Obs.Analyze.ops in
  Alcotest.(check bool)
    (Printf.sprintf "sampling drops ops (%d of %d kept)" n_sampled n_full)
    true
    (n_sampled > 0 && n_sampled < n_full);
  (* sampled-out callbacks are suppressed with their trees: whatever
     callback spans remain are still all flow-linked *)
  Alcotest.(check int)
    "surviving callbacks still flow-linked" sampled.Obs.Analyze.callback_spans
    sampled.Obs.Analyze.flow_linked

(* ---- fleet-scale budget: 1000 clients, capped labels, sampled
   traces ---- *)

let n_clients = 1000
let budget = 8
let keep_one_in = 10

let test_fleet_observability_budget () =
  let m = Obs.Metrics.create ~label_budget:budget () in
  let tr = Obs.Trace.create ~sample_every:keep_one_in () in
  Obs.Metrics.with_metrics m (fun () ->
      Obs.Trace.with_tracer tr (fun () ->
          for i = 0 to n_clients - 1 do
            let track = Printf.sprintf "client%03d" i in
            let now () = float_of_int i in
            Obs.Causal.root ~now ~track ~name:"read" (fun ctx ->
                Obs.Metrics.incr ~labels:[ ("client", track) ] "fleet.ops";
                (* the probe-site pattern: emission guarded on the
                   tracer and on [keep], children tagged with the op *)
                if Obs.Trace.on () && Obs.Causal.keep ctx then begin
                  let sp =
                    Obs.Trace.span ~track
                      ~args:(Obs.Causal.arg ctx [])
                      ~ts:(now ()) ~cat:"cache" ~name:"lookup" ()
                  in
                  Obs.Trace.finish ~ts:(now () +. 0.001) sp
                end)
          done));
  (* metrics: the budget admits [budget] client labels, the rest fold
     into "other"; nothing is lost *)
  Alcotest.(check (option int))
    "budget recorded" (Some budget)
    (Obs.Metrics.label_budget m);
  Alcotest.(check int)
    "series count bounded by budget + other" (budget + 1)
    (Obs.Metrics.series_count m);
  let series = Obs.Metrics.counters_with m "fleet.ops" in
  Alcotest.(check int)
    "label cardinality capped at budget + other" (budget + 1)
    (List.length series);
  Alcotest.(check int)
    "all 1000 increments accounted" n_clients
    (List.fold_left (fun a (_, n) -> a + n) 0 series);
  Alcotest.(check int)
    "overflow folded into the other series"
    (n_clients - budget)
    (Obs.Metrics.counter_value m ~labels:[ ("client", "other") ] "fleet.ops");
  (* traces: head sampling kept exactly one op in [keep_one_in], and
     every kept tree is complete *)
  let run = Obs.Analyze.of_chrome ~label:"fleet" (Obs.Chrome.to_string tr) in
  Alcotest.(check int)
    "sampled op count" (n_clients / keep_one_in)
    (List.length run.Obs.Analyze.ops);
  Alcotest.(check int) "complete trees" 0 run.Obs.Analyze.orphan_spans;
  List.iter
    (fun o ->
      Alcotest.(check string) "kept op class" "read" o.Obs.Analyze.cls)
    run.Obs.Analyze.ops

(* ---- flight recorder: a bounded ring behind the ordinary probe
   sites, snapshot on demand ---- *)

let test_flight_recorder () =
  (* with nothing installed, minting is free and yields the empty
     context *)
  Alcotest.(check bool)
    "mint with tracing off" true
    (Obs.Causal.is_none (Obs.Causal.mint ()));
  (* a ring tracer keeps counting but retains a bounded window *)
  let tr = Obs.Trace.create ~limit:64 () in
  Alcotest.(check int) "ring bound recorded" 64 (Obs.Trace.limit tr);
  Obs.Trace.with_tracer tr (fun () ->
      for i = 1 to 1000 do
        Obs.Trace.instant ~ts:(float_of_int i) ~cat:"x" ~name:"tick" ()
      done);
  Alcotest.(check int) "all emits counted" 1000 (Obs.Trace.count tr);
  Alcotest.(check bool)
    "ring retains a bounded window" true
    (List.length (Obs.Trace.events tr) < 1000);
  (* arm the recorder, run the real workload through the ordinary
     probe sites, snapshot as a post-mortem would *)
  Obs.Flight.arm ~limit:256 ();
  Alcotest.(check bool) "armed" true (Obs.Flight.armed ());
  run_sim scenario;
  Obs.Flight.capture ~reason:"test oracle";
  (match Obs.Flight.last () with
  | None -> Alcotest.fail "no flight capture"
  | Some (reason, json) ->
      Alcotest.(check string) "capture reason" "test oracle" reason;
      (* the dump is well-formed Chrome JSON holding recent events
         with real phases and timestamps *)
      let entries =
        match Obs.Json.member "traceEvents" (Obs.Json.parse json) with
        | Some (Obs.Json.Arr es) -> es
        | _ -> Alcotest.fail "no traceEvents in flight dump"
      in
      let phased =
        List.filter
          (fun e ->
            match Obs.Json.member "ph" e with
            | Some ph -> Obs.Json.str ph <> None
            | None -> false)
          entries
      in
      Alcotest.(check bool) "ring dump non-empty" true (phased <> []);
      Alcotest.(check bool)
        "entries carry numeric timestamps" true
        (List.for_all
           (fun e ->
             match Obs.Json.member "ts" e with
             | Some ts -> Obs.Json.num ts <> None
             | None -> true (* metadata entries have no ts *))
           phased));
  Obs.Flight.disarm ();
  Alcotest.(check bool) "disarmed" false (Obs.Flight.armed ());
  Alcotest.(check (option (pair string string)))
    "capture forgotten on disarm" None (Obs.Flight.last ())

let () =
  Alcotest.run "causal"
    [
      ( "analyzer",
        [
          Alcotest.test_case "callbacks flow-linked" `Slow
            test_callbacks_flow_linked;
          Alcotest.test_case "report deterministic" `Slow
            test_report_deterministic;
          Alcotest.test_case "sampled trees complete" `Slow
            test_sampled_trees_complete;
        ] );
      ( "budget",
        [
          Alcotest.test_case "1000-client fleet budget" `Quick
            test_fleet_observability_budget;
          Alcotest.test_case "flight recorder ring" `Quick
            test_flight_recorder;
        ] );
    ]
