type t = {
  name : string;
  mutable samples : float array;
  mutable len : int;
  mutable sorted : bool;
}

let create name = { name; samples = Array.make 64 0.0; len = 0; sorted = true }

let name t = t.name

let add t v =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- false

let count t = t.len

let ensure_sorted t =
  if not t.sorted then begin
    let live = Array.sub t.samples 0 t.len in
    Array.sort compare live;
    Array.blit live 0 t.samples 0 t.len;
    t.sorted <- true
  end

let mean t =
  if t.len = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.len - 1 do
      sum := !sum +. t.samples.(i)
    done;
    !sum /. float_of_int t.len
  end

let max_value t =
  let m = ref 0.0 in
  for i = 0 to t.len - 1 do
    if t.samples.(i) > !m then m := t.samples.(i)
  done;
  !m

let percentile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile";
  if t.len = 0 then 0.0
  else begin
    ensure_sorted t;
    let rank = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (t.samples.(lo) *. (1.0 -. frac)) +. (t.samples.(hi) *. frac)
  end

let summary t =
  Printf.sprintf "n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    (count t) (mean t) (percentile t 50.0) (percentile t 90.0)
    (percentile t 99.0) (max_value t)
