(** Interface-drift pass.

    A [val] in a [lib/] interface that no code outside its own module
    references is dead API surface: it rots silently and widens the
    audit burden of every protocol change. The pass collects exports
    from each [.mli] and qualified references ([Module.value], with
    [module X = ...] aliases resolved) from every source file; a value
    never referenced outside its defining module is reported at its
    [.mli] declaration.

    Conservative outs: a module that is the target of any [open] or
    [include] elsewhere is skipped entirely (bare references cannot be
    attributed), operator names are skipped, and same-named modules in
    different libraries are merged (a reference to either counts for
    both). *)

val pass : Pass.t
