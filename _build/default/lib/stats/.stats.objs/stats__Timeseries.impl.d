lib/stats/timeseries.ml: Array List
